/**
 * @file
 * Strict input parsing and diagnostics for every Gables input path.
 *
 * Gables results are only as trustworthy as the Ppeak/Bi/fi@Ii numbers
 * fed in, so nothing that reads user input may silently accept
 * garbage. This header is the single home of numeric text parsing:
 * full-token parsers that reject trailing garbage and out-of-range
 * values, ranged/sign-checked variants, a ConfigError diagnostic type
 * carrying a source location (file:line), and did-you-mean suggestion
 * helpers for unknown keys. The null-end-pointer strtod/strtol idiom
 * is banned outside src/util/parse.cc (CI greps for it).
 *
 * All floating-point scanning goes through std::from_chars, so the
 * parsers are locale-independent: "1.5" means 1.5 even when the host
 * process runs under LC_NUMERIC=de_DE, and "1,5" is always rejected.
 * Strict parsing accepts plain decimal notation only — hex floats
 * ("0x1p3") and the textual "inf"/"nan" family are errors.
 */

#ifndef GABLES_UTIL_PARSE_H
#define GABLES_UTIL_PARSE_H

#include <optional>
#include <string>
#include <vector>

#include "util/logging.h"

namespace gables {

/**
 * Where a diagnostic points: a file (or pseudo-file such as "config"
 * for in-memory documents) and a 1-based line number. Formats in the
 * conventional compiler style "file:line".
 */
struct SourceLoc {
    /** File path or input name; empty when unknown. */
    std::string file;
    /** 1-based line number; 0 when unknown. */
    int line = 0;

    /** @return "file:line", "file", or "" as components are known. */
    std::string str() const;
};

/**
 * A user-input error with a source location, thrown by the config
 * parser and the `gables validate` linter. Derives from FatalError so
 * every existing catch site keeps working; what() is the full
 * "file:line: message" diagnostic.
 */
class ConfigError : public FatalError
{
  public:
    ConfigError(SourceLoc loc, const std::string &msg);

    /** @return The source location the diagnostic points at. */
    const SourceLoc &where() const { return loc_; }

    /** @return The message without the location prefix. */
    const std::string &message() const { return msg_; }

  private:
    SourceLoc loc_;
    std::string msg_;
};

/**
 * Report a located user-input error: log it like fatal() and throw
 * ConfigError.
 */
[[noreturn]] void configError(const SourceLoc &loc,
                              const std::string &msg);

/**
 * Parse a full-token floating-point number: the entire (trimmed) text
 * must be consumed and the value must be a finite decimal — hex
 * floats and "inf"/"nan" tokens are rejected.
 *
 * @param text Input text, e.g. "0.75" or "3e9".
 * @param what Noun for error messages, e.g. "fraction".
 * @throws FatalError on empty input, trailing garbage, non-finite
 *         or hex notation, or overflow.
 */
double parseDoubleStrict(const std::string &text,
                         const std::string &what = "number");

/**
 * Parse a full-token base-10 integer.
 *
 * @param text Input text, e.g. "42" or "-7".
 * @param what Noun for error messages, e.g. "worker count".
 * @throws FatalError on empty input, trailing garbage (including a
 *         fractional part), or values outside long's range.
 */
long parseIntStrict(const std::string &text,
                    const std::string &what = "integer");

/**
 * parseIntStrict plus an inclusive range check.
 * @throws FatalError when the value lies outside [lo, hi].
 */
long parseIntInRange(const std::string &text, long lo, long hi,
                     const std::string &what = "integer");

/**
 * parseDoubleStrict plus an inclusive range check.
 * @throws FatalError when the value lies outside [lo, hi].
 */
double parseDoubleInRange(const std::string &text, double lo, double hi,
                          const std::string &what = "number");

/** parseDoubleStrict restricted to values > 0. */
double parsePositiveDouble(const std::string &text,
                           const std::string &what = "number");

/** parseDoubleStrict restricted to values >= 0. */
double parseNonNegativeDouble(const std::string &text,
                              const std::string &what = "number");

/**
 * Consume the leading number of a composite token such as "24.4GB/s".
 *
 * This is the one sanctioned entry point for prefix (non-full-token)
 * numeric parsing; everything else goes through the strict parsers.
 *
 * @param text  Input text.
 * @param value Receives the parsed number on success.
 * @param rest  Receives the unconsumed remainder (untrimmed).
 * @return False when @p text does not start with a number.
 */
bool parseDoublePrefix(const std::string &text, double *value,
                       std::string *rest);

/**
 * Levenshtein edit distance between two strings (case-sensitive;
 * lower-case both sides for fuzzy key matching).
 */
size_t editDistance(const std::string &a, const std::string &b);

/**
 * The candidate closest to @p word by case-insensitive edit distance,
 * if any is close enough to plausibly be a typo (distance <= 1 for
 * short words, <= 2 otherwise, and always < the word's length).
 */
std::optional<std::string>
closestMatch(const std::string &word,
             const std::vector<std::string> &candidates);

/**
 * Render a did-you-mean suffix for an unknown-key diagnostic.
 *
 * @return " (did you mean 'X'?)" for the closest candidate, or ""
 *         when nothing is close enough.
 */
std::string didYouMean(const std::string &word,
                       const std::vector<std::string> &candidates);

} // namespace gables

#endif // GABLES_UTIL_PARSE_H
