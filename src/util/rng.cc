#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace gables {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // Use the top 53 bits for a uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + uniform() * (hi - lo);
}

double
Rng::logUniform(double lo, double hi)
{
    GABLES_ASSERT(lo > 0.0 && hi > lo, "bad logUniform range");
    return std::exp(uniform(std::log(lo), std::log(hi)));
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    GABLES_ASSERT(hi >= lo, "bad uniformInt range");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

std::vector<double>
Rng::simplex(size_t n)
{
    GABLES_ASSERT(n >= 1, "simplex dimension must be >= 1");
    // Sample via exponential spacings: normalize iid Exp(1) draws.
    std::vector<double> out(n);
    double sum = 0.0;
    for (auto &v : out) {
        double u = uniform();
        // Guard against log(0).
        v = -std::log(1.0 - u + 1e-18);
        sum += v;
    }
    for (auto &v : out)
        v /= sum;
    return out;
}

} // namespace gables
