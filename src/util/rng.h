/**
 * @file
 * Deterministic pseudo-random number generation for property tests,
 * randomized model cross-checks, and synthetic workload generation.
 *
 * Uses splitmix64 for seeding and xoshiro256** for the stream; both
 * are tiny, fast, and fully reproducible across platforms (unlike
 * std::default_random_engine or distribution implementations, which
 * vary by standard library).
 */

#ifndef GABLES_UTIL_RNG_H
#define GABLES_UTIL_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gables {

/**
 * xoshiro256** PRNG with deterministic splitmix64 seeding.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** @return The next raw 64-bit value. */
    uint64_t next();

    /** @return A uniform double in [0, 1). */
    double uniform();

    /** @return A uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * @return A log-uniform double in [lo, hi) — uniform in
     * log-space, useful for sampling intensities and bandwidths that
     * span orders of magnitude.
     */
    double logUniform(double lo, double hi);

    /** @return A uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /**
     * @return A random point on the probability simplex of dimension
     * @p n (n non-negative values summing to 1), suitable for random
     * work-fraction vectors.
     */
    std::vector<double> simplex(size_t n);

  private:
    uint64_t s_[4];
};

} // namespace gables

#endif // GABLES_UTIL_RNG_H
