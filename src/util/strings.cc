#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace gables {

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
toLower(const std::string &s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string field;
    std::istringstream iss(s);
    while (std::getline(iss, field, delim))
        out.push_back(field);
    if (!s.empty() && s.back() == delim)
        out.push_back("");
    if (s.empty())
        out.push_back("");
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
formatDouble(double value, int precision)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value > 0 ? "inf" : "-inf";
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    std::string s = oss.str();
    if (s.find('.') != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (s[last] == '.')
            --last;
        s.erase(last + 1);
    }
    return s;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace gables
