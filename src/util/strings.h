/**
 * @file
 * Small string helpers shared across the library.
 */

#ifndef GABLES_UTIL_STRINGS_H
#define GABLES_UTIL_STRINGS_H

#include <string>
#include <vector>

namespace gables {

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/**
 * Split a string on a delimiter character; empty fields are kept.
 *
 * @param s     Input string.
 * @param delim Delimiter character.
 */
std::vector<std::string> split(const std::string &s, char delim);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/**
 * Format a double compactly: fixed notation, trailing zeros trimmed.
 *
 * @param value     Value to format.
 * @param precision Maximum digits after the decimal point.
 */
std::string formatDouble(double value, int precision = 6);

/** Left-pad @p s with spaces to width @p width. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad @p s with spaces to width @p width. */
std::string padRight(const std::string &s, size_t width);

} // namespace gables

#endif // GABLES_UTIL_STRINGS_H
