#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace gables {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), Align::Right)
{
    GABLES_ASSERT(!headers_.empty(), "table needs at least one column");
    if (!aligns_.empty())
        aligns_[0] = Align::Left;
}

void
TextTable::setAlign(size_t col, Align align)
{
    GABLES_ASSERT(col < aligns_.size(), "column index out of range");
    aligns_[col] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("table row has " + std::to_string(cells.size()) +
              " cells, expected " + std::to_string(headers_.size()));
    rows_.push_back(std::move(cells));
    ++dataRows;
}

void
TextTable::addRule()
{
    rows_.push_back({});
}

namespace {

std::vector<size_t>
columnWidths(const std::vector<std::string> &headers,
             const std::vector<std::vector<std::string>> &rows)
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    return widths;
}

} // namespace

std::string
TextTable::render() const
{
    auto widths = columnWidths(headers_, rows_);
    std::ostringstream oss;

    auto emit_rule = [&]() {
        for (size_t c = 0; c < widths.size(); ++c) {
            oss << std::string(widths[c] + 2, '-');
            if (c + 1 < widths.size())
                oss << '+';
        }
        oss << '\n';
    };

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            oss << ' ';
            if (aligns_[c] == Align::Left)
                oss << padRight(cell, widths[c]);
            else
                oss << padLeft(cell, widths[c]);
            oss << ' ';
            if (c + 1 < widths.size())
                oss << '|';
        }
        oss << '\n';
    };

    emit_row(headers_);
    emit_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            emit_rule();
        else
            emit_row(row);
    }
    return oss.str();
}

std::string
TextTable::renderMarkdown() const
{
    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        oss << '|';
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            oss << ' ' << cell << " |";
        }
        oss << '\n';
    };
    emit_row(headers_);
    oss << '|';
    for (size_t c = 0; c < headers_.size(); ++c)
        oss << "---|";
    oss << '\n';
    for (const auto &row : rows_) {
        if (!row.empty())
            emit_row(row);
    }
    return oss.str();
}

} // namespace gables
