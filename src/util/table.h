/**
 * @file
 * Plain-text table formatter used by benches and the CLI to print
 * paper-style tables (e.g. Table I, the appendix walkthrough, and
 * paper-vs-measured comparison rows).
 */

#ifndef GABLES_UTIL_TABLE_H
#define GABLES_UTIL_TABLE_H

#include <string>
#include <vector>

namespace gables {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"IP", "f", "I", "1/T"});
 *   t.addRow({"CPU", "0.25", "8", "160"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Column alignment. */
    enum class Align { Left, Right };

    /** Construct with header labels; column count is fixed by them. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set the alignment of column @p col (default Right). */
    void setAlign(size_t col, Align align);

    /**
     * Append a data row; must have exactly as many cells as there are
     * headers.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator rule at this position. */
    void addRule();

    /** @return Number of data rows added so far (rules excluded). */
    size_t rowCount() const { return dataRows; }

    /** Render the table to a string, one trailing newline included. */
    std::string render() const;

    /**
     * Render as Markdown (pipes and a header rule), for dropping into
     * EXPERIMENTS.md.
     */
    std::string renderMarkdown() const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    // Rows; an empty optional-like marker (empty vector) encodes a rule.
    std::vector<std::vector<std::string>> rows_;
    size_t dataRows = 0;
};

} // namespace gables

#endif // GABLES_UTIL_TABLE_H
