#include "util/units.h"

#include <array>
#include <cctype>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/parse.h"
#include "util/strings.h"

namespace gables {

namespace {

struct Prefix {
    const char *name;
    double scale;
};

/**
 * Scale a value into the largest prefix with magnitude >= 1 and format
 * it with the given unit suffix.
 */
std::string
formatScaled(double value, const char *unit, int precision,
             bool binary_prefixes)
{
    static constexpr std::array<Prefix, 5> decimal = {{
        {"T", kTera}, {"G", kGiga}, {"M", kMega}, {"k", kKilo}, {"", 1.0}
    }};
    static constexpr std::array<Prefix, 4> binary = {{
        {"Gi", kGiB}, {"Mi", kMiB}, {"Ki", kKiB}, {"", 1.0}
    }};
    static constexpr std::array<Prefix, 4> sub = {{
        {"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}
    }};

    std::ostringstream oss;
    oss.precision(precision);
    if (value == 0.0 || std::isnan(value) || std::isinf(value)) {
        oss << value << ' ' << unit;
        return oss.str();
    }

    double mag = std::fabs(value);
    const char *prefix = "";
    double scale = 1.0;
    if (mag >= 1.0) {
        if (binary_prefixes) {
            for (const auto &p : binary) {
                if (mag >= p.scale) {
                    prefix = p.name;
                    scale = p.scale;
                    break;
                }
            }
        } else {
            for (const auto &p : decimal) {
                if (mag >= p.scale) {
                    prefix = p.name;
                    scale = p.scale;
                    break;
                }
            }
        }
    } else if (!binary_prefixes) {
        // Sub-unit magnitudes only make sense for decimal units;
        // binary formatting clamps at the base unit so a fractional
        // byte count prints as "0.5 B", never "500 mB" (millibytes).
        for (const auto &p : sub) {
            prefix = p.name;
            scale = p.scale;
            if (mag >= p.scale)
                break;
        }
    }
    oss << value / scale << ' ' << prefix << unit;
    return oss.str();
}

} // namespace

std::string
formatOpsRate(double ops_per_sec, int precision)
{
    return formatScaled(ops_per_sec, "ops/s", precision, false);
}

std::string
formatByteRate(double bytes_per_sec, int precision)
{
    return formatScaled(bytes_per_sec, "B/s", precision, false);
}

std::string
formatBytes(double bytes, int precision)
{
    return formatScaled(bytes, "B", precision, true);
}

std::string
formatSeconds(double seconds, int precision)
{
    return formatScaled(seconds, "s", precision, false);
}

namespace {

/**
 * Split "<number><ws><prefix+unit>" and return the numeric part scaled
 * by the recognized prefix.
 */
double
parseScaled(const std::string &text, bool size_mode)
{
    std::string s = trim(text);
    if (s.empty())
        fatal("cannot parse empty quantity string");

    // Parse the leading number.
    double value = 0.0;
    std::string tail;
    if (!parseDoublePrefix(s, &value, &tail))
        fatal("cannot parse quantity '" + text + "': no leading number");

    std::string unit = trim(tail);
    if (unit.empty())
        return value;

    double scale = 1.0;
    // Binary prefixes: Ki, Mi, Gi (case-sensitive 'i'; the prefix
    // letter itself is case-insensitive, consistently for all three).
    if (unit.size() >= 2 && unit[1] == 'i') {
        switch (unit[0]) {
          case 'K': case 'k': scale = kKiB; break;
          case 'M': case 'm': scale = kMiB; break;
          case 'G': case 'g': scale = kGiB; break;
          default:
            fatal("unknown binary prefix in '" + text + "'");
        }
        unit = unit.substr(2);
    } else {
        switch (unit[0]) {
          case 'k': case 'K': scale = kKilo; unit = unit.substr(1); break;
          case 'M': scale = kMega; unit = unit.substr(1); break;
          case 'G': scale = kGiga; unit = unit.substr(1); break;
          case 'T': scale = kTera; unit = unit.substr(1); break;
          // Sub-unit prefixes exist only for rates (formatOpsRate
          // emits them); milli-bytes stay rejected in size mode.
          case 'm': case 'u': case 'n': case 'p':
            if (!size_mode) {
                scale = unit[0] == 'm'   ? 1e-3
                        : unit[0] == 'u' ? 1e-6
                        : unit[0] == 'n' ? 1e-9
                                         : 1e-12;
                unit = unit.substr(1);
            }
            break;
          default: break;
        }
    }

    // Validate the residual unit tag, if any.
    std::string low = toLower(unit);
    if (!low.empty()) {
        static const char *ok_rate[] = {
            "ops/s", "ops/sec", "flops/s", "flops/sec", "flop/s",
            "b/s", "bytes/s", "byte/s", "bytes/sec", "hz",
        };
        static const char *ok_size[] = {"b", "byte", "bytes"};
        bool found = false;
        if (size_mode) {
            for (const char *u : ok_size)
                found = found || (low == u);
        } else {
            for (const char *u : ok_rate)
                found = found || (low == u);
        }
        if (!found)
            fatal("unknown unit '" + unit + "' in '" + text + "'");
    }
    return value * scale;
}

} // namespace

double
parseRate(const std::string &text)
{
    return parseScaled(text, false);
}

double
parseSize(const std::string &text)
{
    return parseScaled(text, true);
}

} // namespace gables
