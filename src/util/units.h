/**
 * @file
 * Unit constants, formatting, and parsing for rates and sizes.
 *
 * The Gables model traffics in operations per second (ops/s), bytes
 * per second (bytes/s), bytes, and operational intensity (ops/byte).
 * All quantities are stored as plain doubles in base units; this
 * header provides the decimal (SI) multipliers the paper uses
 * (Gops/s, GB/s) plus binary multipliers for memory capacities, and
 * human-readable formatting/parsing helpers.
 */

#ifndef GABLES_UTIL_UNITS_H
#define GABLES_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace gables {

/** @name Decimal (SI) multipliers — used for rates, as in the paper. */
/** @{ */
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
/** @} */

/** @name Binary multipliers — used for memory capacities. */
/** @{ */
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
/** @} */

/**
 * Format a rate in operations per second as a human string, e.g.
 * "40 Gops/s" or "3.6 Mops/s".
 *
 * @param ops_per_sec Rate in base ops/s.
 * @param precision   Significant digits after scaling (default 4).
 */
std::string formatOpsRate(double ops_per_sec, int precision = 4);

/**
 * Format a bandwidth in bytes per second, e.g. "24.4 GB/s".
 *
 * @param bytes_per_sec Rate in base bytes/s.
 * @param precision     Significant digits after scaling (default 4).
 */
std::string formatByteRate(double bytes_per_sec, int precision = 4);

/**
 * Format a byte count with binary prefixes, e.g. "12 MiB". Sub-unit
 * magnitudes clamp at the base unit ("0.5 B"), since milli-bytes are
 * not a thing.
 *
 * @param bytes     Size in bytes.
 * @param precision Significant digits after scaling (default 4).
 */
std::string formatBytes(double bytes, int precision = 4);

/** Format a duration in seconds with an auto-selected prefix. */
std::string formatSeconds(double seconds, int precision = 4);

/**
 * Parse a rate string such as "40 Gops/s", "24.4GB/s", "3e9", or
 * "920 MHz" (interpreted as events/s) into base units per second.
 *
 * Recognized decimal prefixes: k, K, M, G, T, plus the sub-unit
 * prefixes m, u, n, p that formatOpsRate() emits. The unit suffix
 * after the prefix is ignored apart from validation that it is one of
 * ops/s, flops/s, B/s, bytes/s, Hz, or empty.
 *
 * @param text Input text.
 * @return Value in base units per second.
 * @throws FatalError if the text cannot be parsed.
 */
double parseRate(const std::string &text);

/**
 * Parse a size string such as "12 MiB", "64KiB", "32 kB", or "4096"
 * into bytes. Binary prefixes (Ki/Mi/Gi, prefix letter
 * case-insensitive, 'i' case-sensitive) are 1024-based; decimal
 * prefixes (k/M/G) are 1000-based.
 *
 * @param text Input text.
 * @return Size in bytes.
 * @throws FatalError if the text cannot be parsed.
 */
double parseSize(const std::string &text);

} // namespace gables

#endif // GABLES_UTIL_UNITS_H
