/**
 * @file
 * Tests for the design advisor: it must rediscover the paper's
 * Figure 6 moves on its own.
 */

#include <gtest/gtest.h>

#include "analysis/advisor.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

const Advice *
findKind(const std::vector<Advice> &advice, AdviceKind kind,
         int ip = -2)
{
    for (const Advice &a : advice) {
        if (a.kind == kind && (ip == -2 || a.ip == ip))
            return &a;
    }
    return nullptr;
}

TEST(Advisor, Figure6bTopMoveIsReuseOrResplit)
{
    // Figure 6b: memory bound at 1.33 Gops/s because of the GPU's
    // poor reuse. The biggest single lever the advisor can find
    // should involve the GPU's intensity.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    auto advice = Advisor::advise(soc, u);
    ASSERT_FALSE(advice.empty());
    // The two software levers dominate: re-splitting the work away
    // from the low-reuse GPU, or raising the GPU's reuse. Both dwarf
    // anything hardware can do within the 4x scale cap.
    EXPECT_TRUE(advice.front().kind == AdviceKind::Resplit ||
                (advice.front().kind == AdviceKind::RaiseIntensity &&
                 advice.front().ip == 1))
        << advice.front().description;
    EXPECT_GT(advice.front().gain, 5.0);
    const Advice *reuse =
        findKind(advice, AdviceKind::RaiseIntensity, 1);
    ASSERT_NE(reuse, nullptr);
    EXPECT_GT(reuse->gain, 5.0);
}

TEST(Advisor, Figure6cFlagsOverProvisionedBpeak)
{
    // Figure 6c -> 6d: the paper cuts Bpeak from 30 to 20 GB/s "a
    // sufficient" value. With the reuse fix applied, the advisor
    // must flag the slack.
    SocSpec soc = SocCatalog::paperTwoIp().withBpeak(30e9);
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    auto advice = Advisor::advise(soc, u);
    const Advice *shrink = findKind(advice, AdviceKind::ShrinkSlack);
    ASSERT_NE(shrink, nullptr);
    EXPECT_EQ(shrink->ip, -1); // chip-level Bpeak
    EXPECT_NEAR(shrink->after, 20e9, 1e6);
    EXPECT_DOUBLE_EQ(shrink->gain, 1.0);
}

TEST(Advisor, BalancedDesignGetsNoBigSingleKnobWin)
{
    // Figure 6d is balanced: no single hardware knob within 4x gives
    // a large gain (every knob alone leaves the others binding;
    // gains stay bounded by the second-binding resource).
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    auto advice = Advisor::advise(soc, u);
    for (const Advice &a : advice) {
        if (a.kind == AdviceKind::ShrinkSlack)
            continue;
        EXPECT_LT(a.gain, 2.0) << a.description;
    }
}

TEST(Advisor, ComputeBoundCaseSuggestsAcceleration)
{
    // All work on the GPU, compute bound: growing A1 is the lever.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("gpu", 1.0, 8.0, 100.0);
    auto advice = Advisor::advise(soc, u);
    const Advice *accel =
        findKind(advice, AdviceKind::RaiseAcceleration, 1);
    ASSERT_NE(accel, nullptr);
    EXPECT_GT(accel->gain, 1.5);
}

TEST(Advisor, ProposalsAreMinimal)
{
    // The proposed parameter should be just enough: applying it
    // yields the promised performance, and a 20% smaller move gives
    // strictly less.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    auto advice = Advisor::advise(soc, u);
    const Advice *bpeak = findKind(advice, AdviceKind::RaiseBpeak);
    ASSERT_NE(bpeak, nullptr);
    double promised = bpeak->newAttainable;
    double applied = GablesModel::evaluate(
                         soc.withBpeak(bpeak->after), u)
                         .attainable;
    EXPECT_NEAR(applied, promised, promised * 1e-6);
    double smaller = GablesModel::evaluate(
                         soc.withBpeak(bpeak->after * 0.8), u)
                         .attainable;
    EXPECT_LT(smaller, promised);
}

TEST(Advisor, SortedByGain)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    auto advice = Advisor::advise(soc, u);
    double prev = 1e300;
    for (const Advice &a : advice) {
        if (a.kind == AdviceKind::ShrinkSlack)
            continue; // appended after the ranked improvements
        EXPECT_LE(a.gain, prev);
        prev = a.gain;
    }
}

TEST(Advisor, ResplitSuggestedWhenSplitIsBad)
{
    // Everything on the slow CPU while a 5x GPU idles: re-splitting
    // is the dominant advice.
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("cpu-only", 0.0, 8.0, 8.0);
    auto advice = Advisor::advise(soc, u);
    const Advice *resplit = findKind(advice, AdviceKind::Resplit);
    ASSERT_NE(resplit, nullptr);
    EXPECT_NEAR(resplit->gain, 4.0, 0.01); // 40 -> 160 Gops/s
}

TEST(Advisor, RespectsMinGainFilter)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    Advisor::Options opts;
    opts.minGain = 1.5; // balanced design: no knob reaches 1.5x
    auto advice = Advisor::advise(soc, u, opts);
    for (const Advice &a : advice)
        EXPECT_EQ(a.kind, AdviceKind::ShrinkSlack) << a.description;
}

TEST(Advisor, InvalidOptionsRejected)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    Advisor::Options opts;
    opts.maxScale = 1.0;
    EXPECT_THROW(Advisor::advise(soc, u, opts), FatalError);
}

TEST(Advisor, KindToString)
{
    EXPECT_EQ(toString(AdviceKind::RaiseBpeak), "raise Bpeak");
    EXPECT_EQ(toString(AdviceKind::Resplit), "re-apportion work");
    EXPECT_EQ(toString(AdviceKind::ShrinkSlack),
              "shrink over-provisioned resource");
}

} // namespace
} // namespace gables
