/**
 * @file
 * Unit tests for the balanced-design solvers against the paper's
 * Figure 6d: the canonical balanced two-IP design.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/balance.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

TEST(Balance, Figure6dIsPerfectlyBalanced)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    BalanceReport r = Balance::report(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, 160e9);
    EXPECT_NEAR(r.maxSlack, 0.0, 1e-12);
    EXPECT_NEAR(r.ipSlack[0], 0.0, 1e-12);
    EXPECT_NEAR(r.ipSlack[1], 0.0, 1e-12);
    EXPECT_NEAR(r.memorySlack, 0.0, 1e-12);
}

TEST(Balance, Figure6cHasSlack)
{
    // Bpeak = 30 with I1 = 0.1: IP[0] is vastly over-provisioned
    // (bound 160 vs attainable 2).
    SocSpec soc = SocCatalog::paperTwoIp().withBpeak(30e9);
    Usecase u = Usecase::twoIp("6c", 0.75, 8.0, 0.1);
    BalanceReport r = Balance::report(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, 2e9);
    EXPECT_NEAR(r.ipSlack[0], 160.0 / 2.0 - 1.0, 1e-9);
    EXPECT_NEAR(r.ipSlack[1], 0.0, 1e-12);
    EXPECT_GT(r.memorySlack, 0.9); // 3.98/2 - 1
}

TEST(Balance, IdleIpHasInfiniteSlack)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6a", 0.0, 8.0, 0.1);
    BalanceReport r = Balance::report(soc, u);
    EXPECT_TRUE(std::isinf(r.ipSlack[1]));
}

TEST(Balance, SufficientBpeakReproducesFigure6d)
{
    // The paper reduces Bpeak from 30 to "a sufficient 20 GB/s".
    SocSpec soc = SocCatalog::paperTwoIp().withBpeak(30e9);
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    EXPECT_NEAR(Balance::sufficientBpeak(soc, u), 20e9, 1e3);
}

TEST(Balance, SufficientBpeakDoesNotChangePerformance)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{0.3, 4.0}, IpWork{0.6, 2.0},
                    IpWork{0.1, 1.0}});
    double sufficient = Balance::sufficientBpeak(soc, u);
    double before = GablesModel::evaluate(soc, u).attainable;
    double after = GablesModel::evaluate(soc.withBpeak(sufficient), u)
                       .attainable;
    EXPECT_NEAR(after, before, before * 1e-12);
    // And any less does hurt.
    double less = GablesModel::evaluate(
                      soc.withBpeak(sufficient * 0.9), u)
                      .attainable;
    EXPECT_LT(less, before);
}

TEST(Balance, SufficientBpeakZeroForPureCompute)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    constexpr double inf = std::numeric_limits<double>::infinity();
    Usecase u("compute", {IpWork{1.0, inf}, IpWork{0.0, 1.0}});
    EXPECT_DOUBLE_EQ(Balance::sufficientBpeak(soc, u), 0.0);
}

TEST(Balance, SufficientIpBandwidth)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    // IP[1] moves 0.09375 B/op; binding time elsewhere is 1/160e9.
    double b1 = Balance::sufficientIpBandwidth(soc, u, 1);
    EXPECT_NEAR(b1, 0.09375 * 160e9, 1e3); // = 15 GB/s, exactly B1
    // Verify: shrinking below reduces performance, equal keeps it.
    double before = GablesModel::evaluate(soc, u).attainable;
    EXPECT_NEAR(GablesModel::evaluate(soc.withIpBandwidth(1, b1), u)
                    .attainable,
                before, before * 1e-9);
    EXPECT_LT(GablesModel::evaluate(
                  soc.withIpBandwidth(1, b1 * 0.8), u)
                  .attainable,
              before);
}

TEST(Balance, SufficientIpBandwidthZeroForNoTraffic)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.0, 8.0, 1.0);
    EXPECT_DOUBLE_EQ(Balance::sufficientIpBandwidth(soc, u, 1), 0.0);
}

TEST(Balance, RequiredIntensityReproducesFigure6dMove)
{
    // On the Bpeak = 20 design, what reuse does the GPU need for
    // 160 Gops/s? The paper's answer: I1 = 8.
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    double required = Balance::requiredIntensity(soc, u, 1, 160e9);
    EXPECT_NEAR(required, 8.0, 0.01);
}

TEST(Balance, RequiredIntensityInfeasibleTarget)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    // IP[1] compute caps at A1*Ppeak/f = 200/0.75 = 266.7 Gops/s.
    EXPECT_TRUE(std::isinf(
        Balance::requiredIntensity(soc, u, 1, 300e9)));
    // And IP[0] (f = 0.25, bound 160) caps any higher target too.
    EXPECT_TRUE(std::isinf(
        Balance::requiredIntensity(soc, u, 1, 200e9)));
}

TEST(Balance, RequiredIntensityIdleIpIsZero)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.0, 8.0, 0.1);
    EXPECT_DOUBLE_EQ(Balance::requiredIntensity(soc, u, 1, 40e9), 0.0);
}

TEST(Balance, RequiredIntensityRejectsBadTarget)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(Balance::requiredIntensity(soc, u, 1, 0.0),
                 FatalError);
}

} // namespace
} // namespace gables
