/**
 * @file
 * Tests for the design-space explorer: enumeration, scoring by the
 * worst usecase, cost model, and Pareto marking.
 */

#include <gtest/gtest.h>

#include "analysis/explorer.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

CostModel
simpleCost()
{
    CostModel cost;
    cost.costPerAcceleration = 1.0;
    cost.costPerBpeak = 1e-9; // one unit per GB/s
    cost.costPerIpBandwidth = 0.0;
    return cost;
}

TEST(CostModel, LinearInComponents)
{
    SocSpec soc = SocCatalog::paperTwoIp(); // A = 1 + 5, Bpeak = 10G
    CostModel cost = simpleCost();
    EXPECT_NEAR(cost.cost(soc), 6.0 + 10.0, 1e-9);
    EXPECT_NEAR(cost.cost(soc.withBpeak(20e9)), 6.0 + 20.0, 1e-9);
}

TEST(Explorer, NoKnobsYieldsBaseOnly)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_TRUE(candidates[0].pareto);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf,
                     GablesModel::evaluate(base, u).attainable);
}

TEST(Explorer, CrossProductSize)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({10e9, 20e9, 30e9});
    ex.sweepAcceleration(1, {2.0, 5.0});
    EXPECT_EQ(ex.explore().size(), 6u);
}

TEST(Explorer, ScoreIsWorstUsecase)
{
    SocSpec base = SocCatalog::paperTwoIpBalanced();
    Usecase good = Usecase::twoIp("good", 0.75, 8.0, 8.0); // 160 G
    Usecase bad = Usecase::twoIp("bad", 0.75, 8.0, 0.1);   // ~2.66 G
    DesignExplorer ex(base, {good, bad}, simpleCost());
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_DOUBLE_EQ(candidates[0].perUsecase[0], 160e9);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf,
                     candidates[0].perUsecase[1]);
    EXPECT_LT(candidates[0].minPerf, 3e9);
}

TEST(Explorer, DominatedDesignsNotPareto)
{
    // More Bpeak costs more; where it buys no performance the
    // smaller design dominates.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({20e9, 40e9}); // both reach 160 Gops/s
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 2u);
    int pareto_count = 0;
    for (const Candidate &c : candidates) {
        if (c.pareto) {
            ++pareto_count;
            EXPECT_DOUBLE_EQ(c.soc.bpeak(), 20e9);
        }
    }
    EXPECT_EQ(pareto_count, 1);
}

TEST(Explorer, TiedCostAndPerformanceAreBothPareto)
{
    // Two designs with identical cost AND identical performance tie:
    // neither strictly beats the other on any axis, so domination
    // (>= on both, > on at least one) holds for neither and both
    // must carry the Pareto flag. A free-bandwidth cost model makes
    // the two Bpeak grid points exact ties -- both saturate the same
    // compute roof at 160 Gops/s and cost only their (equal)
    // acceleration budget.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    CostModel free_bw;
    free_bw.costPerAcceleration = 1.0;
    free_bw.costPerBpeak = 0.0;
    free_bw.costPerIpBandwidth = 0.0;
    DesignExplorer ex(base, {u}, free_bw);
    ex.sweepBpeak({20e9, 40e9}); // both reach 160 Gops/s
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf, candidates[1].minPerf);
    EXPECT_DOUBLE_EQ(candidates[0].cost, candidates[1].cost);
    EXPECT_TRUE(candidates[0].pareto);
    EXPECT_TRUE(candidates[1].pareto);
    // And the frontier keeps both ties rather than dropping one.
    EXPECT_EQ(DesignExplorer::frontier(candidates).size(), 2u);
}

TEST(Explorer, EqualPerfCheaperDesignDominates)
{
    // Same performance tie, but once bandwidth costs money again the
    // cheaper of the two tied designs is the only Pareto point.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({20e9, 40e9});
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf, candidates[1].minPerf);
    for (const Candidate &c : candidates)
        EXPECT_EQ(c.pareto, c.soc.bpeak() == 20e9);
}

TEST(Explorer, FrontierSortedByCost)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.5);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({5e9, 10e9, 20e9, 40e9});
    ex.sweepAcceleration(1, {2.0, 5.0, 20.0});
    auto frontier = DesignExplorer::frontier(ex.explore());
    ASSERT_GE(frontier.size(), 2u);
    for (size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].cost, frontier[i - 1].cost);
        // Along the frontier, more cost must buy more performance.
        EXPECT_GT(frontier[i].minPerf, frontier[i - 1].minPerf);
    }
}

TEST(Explorer, ResultsSortedByPerformance)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.5);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({5e9, 40e9, 10e9});
    auto candidates = ex.explore();
    for (size_t i = 1; i < candidates.size(); ++i)
        EXPECT_LE(candidates[i].minPerf, candidates[i - 1].minPerf);
}

TEST(Explorer, InvalidInputsRejected)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(DesignExplorer(base, {}, simpleCost()), FatalError);

    Usecase three("three", {IpWork{0.5, 1.0}, IpWork{0.25, 1.0},
                            IpWork{0.25, 1.0}});
    EXPECT_THROW(DesignExplorer(base, {three}, simpleCost()),
                 FatalError);

    DesignExplorer ex(base, {u}, simpleCost());
    EXPECT_THROW(ex.sweepBpeak({}), FatalError);
    EXPECT_THROW(ex.sweepAcceleration(0, {2.0}), FatalError);
}

} // namespace
} // namespace gables
