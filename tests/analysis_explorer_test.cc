/**
 * @file
 * Tests for the design-space explorer: enumeration, scoring by the
 * worst usecase, cost model, and Pareto marking.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/explorer.h"
#include "core/evaluator.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

CostModel
simpleCost()
{
    CostModel cost;
    cost.costPerAcceleration = 1.0;
    cost.costPerBpeak = 1e-9; // one unit per GB/s
    cost.costPerIpBandwidth = 0.0;
    return cost;
}

TEST(CostModel, LinearInComponents)
{
    SocSpec soc = SocCatalog::paperTwoIp(); // A = 1 + 5, Bpeak = 10G
    CostModel cost = simpleCost();
    EXPECT_NEAR(cost.cost(soc), 6.0 + 10.0, 1e-9);
    EXPECT_NEAR(cost.cost(soc.withBpeak(20e9)), 6.0 + 20.0, 1e-9);
}

TEST(Explorer, NoKnobsYieldsBaseOnly)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_TRUE(candidates[0].pareto);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf,
                     GablesModel::evaluate(base, u).attainable);
}

TEST(Explorer, CrossProductSize)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({10e9, 20e9, 30e9});
    ex.sweepAcceleration(1, {2.0, 5.0});
    EXPECT_EQ(ex.explore().size(), 6u);
}

TEST(Explorer, ScoreIsWorstUsecase)
{
    SocSpec base = SocCatalog::paperTwoIpBalanced();
    Usecase good = Usecase::twoIp("good", 0.75, 8.0, 8.0); // 160 G
    Usecase bad = Usecase::twoIp("bad", 0.75, 8.0, 0.1);   // ~2.66 G
    DesignExplorer ex(base, {good, bad}, simpleCost());
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_DOUBLE_EQ(candidates[0].perUsecase[0], 160e9);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf,
                     candidates[0].perUsecase[1]);
    EXPECT_LT(candidates[0].minPerf, 3e9);
}

TEST(Explorer, DominatedDesignsNotPareto)
{
    // More Bpeak costs more; where it buys no performance the
    // smaller design dominates.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({20e9, 40e9}); // both reach 160 Gops/s
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 2u);
    int pareto_count = 0;
    for (const Candidate &c : candidates) {
        if (c.pareto) {
            ++pareto_count;
            EXPECT_DOUBLE_EQ(c.soc.bpeak(), 20e9);
        }
    }
    EXPECT_EQ(pareto_count, 1);
}

TEST(Explorer, TiedCostAndPerformanceAreBothPareto)
{
    // Two designs with identical cost AND identical performance tie:
    // neither strictly beats the other on any axis, so domination
    // (>= on both, > on at least one) holds for neither and both
    // must carry the Pareto flag. A free-bandwidth cost model makes
    // the two Bpeak grid points exact ties -- both saturate the same
    // compute roof at 160 Gops/s and cost only their (equal)
    // acceleration budget.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    CostModel free_bw;
    free_bw.costPerAcceleration = 1.0;
    free_bw.costPerBpeak = 0.0;
    free_bw.costPerIpBandwidth = 0.0;
    DesignExplorer ex(base, {u}, free_bw);
    ex.sweepBpeak({20e9, 40e9}); // both reach 160 Gops/s
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf, candidates[1].minPerf);
    EXPECT_DOUBLE_EQ(candidates[0].cost, candidates[1].cost);
    EXPECT_TRUE(candidates[0].pareto);
    EXPECT_TRUE(candidates[1].pareto);
    // And the frontier keeps both ties rather than dropping one.
    EXPECT_EQ(DesignExplorer::frontier(candidates).size(), 2u);
}

TEST(Explorer, EqualPerfCheaperDesignDominates)
{
    // Same performance tie, but once bandwidth costs money again the
    // cheaper of the two tied designs is the only Pareto point.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({20e9, 40e9});
    auto candidates = ex.explore();
    ASSERT_EQ(candidates.size(), 2u);
    EXPECT_DOUBLE_EQ(candidates[0].minPerf, candidates[1].minPerf);
    for (const Candidate &c : candidates)
        EXPECT_EQ(c.pareto, c.soc.bpeak() == 20e9);
}

TEST(Explorer, FrontierSortedByCost)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.5);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({5e9, 10e9, 20e9, 40e9});
    ex.sweepAcceleration(1, {2.0, 5.0, 20.0});
    auto frontier = DesignExplorer::frontier(ex.explore());
    ASSERT_GE(frontier.size(), 2u);
    for (size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].cost, frontier[i - 1].cost);
        // Along the frontier, more cost must buy more performance.
        EXPECT_GT(frontier[i].minPerf, frontier[i - 1].minPerf);
    }
}

TEST(Explorer, ResultsSortedByPerformance)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.5);
    DesignExplorer ex(base, {u}, simpleCost());
    ex.sweepBpeak({5e9, 40e9, 10e9});
    auto candidates = ex.explore();
    for (size_t i = 1; i < candidates.size(); ++i)
        EXPECT_LE(candidates[i].minPerf, candidates[i - 1].minPerf);
}

TEST(Explorer, InvalidInputsRejected)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(DesignExplorer(base, {}, simpleCost()), FatalError);

    Usecase three("three", {IpWork{0.5, 1.0}, IpWork{0.25, 1.0},
                            IpWork{0.25, 1.0}});
    EXPECT_THROW(DesignExplorer(base, {three}, simpleCost()),
                 FatalError);

    DesignExplorer ex(base, {u}, simpleCost());
    EXPECT_THROW(ex.sweepBpeak({}), FatalError);
    EXPECT_THROW(ex.sweepAcceleration(0, {2.0}), FatalError);
}

// ---------------------------------------------------------------
// exploreFrontier(): the pruned fast path must reproduce
// frontier(explore()) exactly — member set, every field, and order.
// ---------------------------------------------------------------

uint64_t
bitsOf(double v)
{
    return std::bit_cast<uint64_t>(v);
}

void
expectSameFrontier(const std::vector<Candidate> &fast,
                   const std::vector<Candidate> &reference,
                   const std::string &what)
{
    ASSERT_EQ(fast.size(), reference.size()) << what;
    for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(bitsOf(fast[i].minPerf), bitsOf(reference[i].minPerf))
            << what << " member " << i;
        EXPECT_EQ(bitsOf(fast[i].cost), bitsOf(reference[i].cost))
            << what << " member " << i;
        EXPECT_TRUE(fast[i].pareto) << what << " member " << i;
        EXPECT_EQ(bitsOf(fast[i].soc.bpeak()),
                  bitsOf(reference[i].soc.bpeak()))
            << what << " member " << i;
        ASSERT_EQ(fast[i].soc.numIps(), reference[i].soc.numIps());
        for (size_t j = 0; j < fast[i].soc.numIps(); ++j) {
            EXPECT_EQ(bitsOf(fast[i].soc.ip(j).acceleration),
                      bitsOf(reference[i].soc.ip(j).acceleration))
                << what << " member " << i << " ip " << j;
            EXPECT_EQ(bitsOf(fast[i].soc.ip(j).bandwidth),
                      bitsOf(reference[i].soc.ip(j).bandwidth))
                << what << " member " << i << " ip " << j;
        }
        ASSERT_EQ(fast[i].perUsecase.size(),
                  reference[i].perUsecase.size());
        for (size_t u = 0; u < fast[i].perUsecase.size(); ++u)
            EXPECT_EQ(bitsOf(fast[i].perUsecase[u]),
                      bitsOf(reference[i].perUsecase[u]))
                << what << " member " << i << " usecase " << u;
    }
}

/** A two-knob 64x64 grid over the paper SoC with two usecases. */
DesignExplorer
gridExplorer()
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase a = Usecase::twoIp("a", 0.75, 8.0, 0.5);
    Usecase b = Usecase::twoIp("b", 0.25, 2.0, 16.0);
    DesignExplorer ex(base, {a, b}, simpleCost());
    std::vector<double> bpeaks, accels;
    for (int i = 0; i < 64; ++i) {
        bpeaks.push_back((i + 1) * 1.5e9);
        accels.push_back(1.0 + i * 0.75);
    }
    ex.sweepBpeak(bpeaks);
    ex.sweepAcceleration(1, accels);
    return ex;
}

TEST(ExploreFrontier, PrunedMatchesUnprunedOnLargeGrid)
{
    DesignExplorer ex = gridExplorer();
    auto reference = DesignExplorer::frontier(ex.explore());

    ExploreOptions opts;
    ExploreStats stats;
    auto fast = ex.exploreFrontier(opts, &stats);
    expectSameFrontier(fast, reference, "pruned");

    // The 64x64 grid must actually exercise the pruning machinery.
    EXPECT_GT(stats.subgridsSkipped, 0u);
    EXPECT_GT(stats.evalsPruned, 0u);
    EXPECT_LT(stats.evals,
              static_cast<uint64_t>(ex.gridSize()) * 2);
}

TEST(ExploreFrontier, DisabledPruningAlsoMatches)
{
    DesignExplorer ex = gridExplorer();
    auto reference = DesignExplorer::frontier(ex.explore());

    ExploreOptions opts;
    opts.prune = false;
    ExploreStats stats;
    auto fast = ex.exploreFrontier(opts, &stats);
    expectSameFrontier(fast, reference, "no-prune");
    EXPECT_EQ(stats.subgridsSkipped, 0u);
    EXPECT_EQ(stats.evalsPruned, 0u);
    // All designs evaluated for both usecases, plus the frontier
    // re-materialization.
    EXPECT_EQ(stats.evals,
              static_cast<uint64_t>(ex.gridSize()) * 2 +
                  fast.size() * 2);
}

TEST(ExploreFrontier, JobsInvariance)
{
    DesignExplorer ex = gridExplorer();
    ExploreOptions serial;
    auto one = ex.exploreFrontier(serial);

    ExploreOptions parallel_opts;
    parallel_opts.jobs = 0; // hardware concurrency
    auto many = ex.exploreFrontier(parallel_opts);
    expectSameFrontier(many, one, "jobs");
}

TEST(ExploreFrontier, SubgridSizeInvariance)
{
    DesignExplorer ex = gridExplorer();
    auto reference = DesignExplorer::frontier(ex.explore());
    for (size_t subgrid : {1u, 7u, 64u, 1000u, 100000u}) {
        ExploreOptions opts;
        opts.subgridSize = subgrid;
        auto fast = ex.exploreFrontier(opts);
        expectSameFrontier(fast, reference,
                           "subgrid " + std::to_string(subgrid));
    }
}

TEST(ExploreFrontier, RandomizedGridsMatchUnpruned)
{
    for (uint64_t seed = 0; seed < 12; ++seed) {
        Rng rng(seed);
        SocSpec base = SocCatalog::paperTwoIp();
        Usecase a = Usecase::twoIp("a", rng.uniform(0.05, 0.95),
                                   rng.logUniform(0.1, 64.0),
                                   rng.logUniform(0.1, 64.0));
        Usecase b = Usecase::twoIp("b", rng.uniform(0.05, 0.95),
                                   rng.logUniform(0.1, 64.0),
                                   rng.logUniform(0.1, 64.0));
        CostModel cost;
        cost.costPerAcceleration = rng.logUniform(0.1, 10.0);
        cost.costPerBpeak = rng.logUniform(1e-10, 1e-8);
        cost.costPerIpBandwidth =
            rng.uniformInt(0, 1) ? rng.logUniform(1e-10, 1e-9) : 0.0;
        DesignExplorer ex(base, {a, b}, cost);

        std::vector<double> bpeaks, accels, bands;
        size_t nb = static_cast<size_t>(rng.uniformInt(2, 17));
        size_t na = static_cast<size_t>(rng.uniformInt(2, 17));
        size_t nw = static_cast<size_t>(rng.uniformInt(2, 9));
        for (size_t i = 0; i < nb; ++i)
            bpeaks.push_back(rng.logUniform(1e9, 1e11));
        for (size_t i = 0; i < na; ++i)
            accels.push_back(rng.logUniform(1.0, 50.0));
        for (size_t i = 0; i < nw; ++i)
            bands.push_back(rng.logUniform(1e9, 1e11));
        ex.sweepBpeak(bpeaks);
        ex.sweepAcceleration(1, accels);
        ex.sweepIpBandwidth(0, bands);

        auto reference = DesignExplorer::frontier(ex.explore());
        ExploreOptions opts;
        opts.subgridSize = static_cast<size_t>(rng.uniformInt(4, 96));
        auto fast = ex.exploreFrontier(opts);
        expectSameFrontier(fast, reference,
                           "seed " + std::to_string(seed));
    }
}

TEST(ExploreFrontier, DuplicateKnobTargetsFallBack)
{
    // Two sweeps over the same parameter: the later application wins
    // per design, so per-knob bounds are invalid and the explorer
    // must silently disable pruning rather than mis-prune.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.5);
    DesignExplorer ex(base, {u}, simpleCost());
    std::vector<double> bpeaks;
    for (int i = 0; i < 40; ++i)
        bpeaks.push_back((i + 1) * 2e9);
    ex.sweepBpeak(bpeaks);
    ex.sweepBpeak({5e9, 50e9});

    auto reference = DesignExplorer::frontier(ex.explore());
    ExploreOptions opts;
    opts.subgridSize = 8;
    ExploreStats stats;
    auto fast = ex.exploreFrontier(opts, &stats);
    expectSameFrontier(fast, reference, "duplicate knobs");
    EXPECT_EQ(stats.subgridsSkipped, 0u);
    EXPECT_EQ(stats.evalsPruned, 0u);
}

TEST(ExploreFrontier, PackedToggleIsByteIdentical)
{
    // Direct A/B across the runtime toggle: the packed grid path
    // (incremental lane digits + pack-side cost sums) and the scalar
    // path must return identical frontiers, pruned and unpruned. The
    // grid width (64) is not a multiple of the pack width times the
    // subgrid stride, so partial packs are exercised too.
    DesignExplorer ex = gridExplorer();
    for (bool prune : {true, false}) {
        ExploreOptions opts;
        opts.prune = prune;
        auto packed = [&] {
            simd::ScopedEnable on(true);
            return ex.exploreFrontier(opts);
        }();
        auto scalar = [&] {
            simd::ScopedEnable off(false);
            return ex.exploreFrontier(opts);
        }();
        expectSameFrontier(packed, scalar,
                           prune ? "toggle pruned"
                                 : "toggle unpruned");
    }
}

TEST(ExploreFrontier, StatsAccounting)
{
    DesignExplorer ex = gridExplorer();
    ExploreStats stats;
    auto frontier = ex.exploreFrontier({}, &stats);
    const uint64_t n_use = 2;
    const uint64_t total = ex.gridSize() * n_use;
    // Every design is either evaluated or pruned; probes and frontier
    // re-materialization come on top of the evaluated share.
    EXPECT_GE(stats.evals + stats.evalsPruned,
              total + frontier.size() * n_use);
    EXPECT_LE(stats.evalsPruned, total);
    EXPECT_GE(stats.forStats.workers, 1);
}

} // namespace
} // namespace gables
