/**
 * @file
 * Tests for the optimal work-split solver, including a property
 * check that no random split beats the solved optimum.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/optimal_split.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

TEST(OptimalSplit, SingleIpGetsEverything)
{
    SocSpec soc("one", 10e9, 20e9, {IpSpec{"CPU", 1.0, 8e9}});
    OptimalSplit r = OptimalSplitSolver(soc, {4.0}).solve();
    ASSERT_EQ(r.fractions.size(), 1u);
    EXPECT_DOUBLE_EQ(r.fractions[0], 1.0);
    EXPECT_DOUBLE_EQ(r.attainable, 10e9); // compute bound at I = 4
}

TEST(OptimalSplit, ComputeBoundCaseSharesByPeak)
{
    // Huge intensities: every IP is compute-bound, so the optimum
    // loads each IP in proportion to its peak and achieves the sum.
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    OptimalSplit r =
        OptimalSplitSolver(soc, {1e6, 1e6}).solve();
    EXPECT_NEAR(r.attainable, 240e9, 240e9 * 1e-6);
    EXPECT_NEAR(r.fractions[0], 40.0 / 240.0, 1e-6);
    EXPECT_NEAR(r.fractions[1], 200.0 / 240.0, 1e-6);
}

TEST(OptimalSplit, SolverResultMatchesModelEvaluation)
{
    SocSpec soc = SocCatalog::snapdragon835();
    OptimalSplit r =
        OptimalSplitSolver(soc, {4.0, 16.0, 1.0}).solve();
    double model = GablesModel::evaluate(soc, r.usecase).attainable;
    EXPECT_NEAR(r.attainable, model, model * 1e-12);
}

TEST(OptimalSplit, BeatsPureCpuAndPureGpuWhenBalancedHelps)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    OptimalSplit r = OptimalSplitSolver(soc, {8.0, 8.0}).solve();
    double cpu_only =
        GablesModel::evaluate(soc, Usecase::twoIp("c", 0.0, 8.0, 8.0))
            .attainable;
    double gpu_only =
        GablesModel::evaluate(soc, Usecase::twoIp("g", 1.0, 8.0, 8.0))
            .attainable;
    EXPECT_GE(r.attainable, cpu_only);
    EXPECT_GE(r.attainable, gpu_only);
    // The paper's balanced point: f = 0.75 achieving 160 Gops/s.
    EXPECT_NEAR(r.attainable, 160e9, 160e9 * 1e-9);
    EXPECT_NEAR(r.fractions[1], 0.75, 1e-6);
}

TEST(OptimalSplit, NoRandomSplitBeatsOptimum)
{
    Rng rng(4242);
    SocSpec soc = SocCatalog::snapdragon835();
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> intensities = {
            rng.logUniform(0.1, 64.0), rng.logUniform(0.1, 64.0),
            rng.logUniform(0.1, 64.0)};
        OptimalSplit best =
            OptimalSplitSolver(soc, intensities).solve();
        for (int probe = 0; probe < 50; ++probe) {
            std::vector<double> f = rng.simplex(3);
            Usecase u("probe",
                      {IpWork{f[0], intensities[0]},
                       IpWork{f[1], intensities[1]},
                       IpWork{f[2], intensities[2]}});
            double perf = GablesModel::evaluate(soc, u).attainable;
            EXPECT_LE(perf, best.attainable * (1.0 + 1e-9))
                << "trial " << trial << " probe " << probe;
        }
    }
}

TEST(OptimalSplit, MemoryConstrainedPrefersHighIntensityIps)
{
    // Two identical IPs except intensity of the work differs; with
    // memory the binding resource, the high-intensity IP must carry
    // more work.
    SocSpec soc("mem", 100e9, 2e9,
                {IpSpec{"A", 1.0, 100e9}, IpSpec{"B", 1.0, 100e9}});
    OptimalSplit r = OptimalSplitSolver(soc, {8.0, 0.5}).solve();
    EXPECT_GT(r.fractions[0], r.fractions[1]);
}

TEST(OptimalSplit, InfiniteIntensityWorkIsFree)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    SocSpec soc = SocCatalog::paperTwoIp();
    OptimalSplit r = OptimalSplitSolver(soc, {inf, inf}).solve();
    // No memory traffic at all: aggregate compute 240 Gops/s.
    EXPECT_NEAR(r.attainable, 240e9, 240e9 * 1e-9);
}

TEST(OptimalSplit, PlaceableWorkScalesLinearly)
{
    SocSpec soc = SocCatalog::snapdragon835();
    OptimalSplitSolver solver(soc, {4.0, 4.0, 4.0});
    double w1 = solver.placeableWork(1.0);
    double w2 = solver.placeableWork(2.0);
    EXPECT_NEAR(w2, 2.0 * w1, w1 * 1e-9);
}

TEST(OptimalSplit, InvalidInputsRejected)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    EXPECT_THROW(OptimalSplitSolver(soc, {1.0}), FatalError);
    EXPECT_THROW(OptimalSplitSolver(soc, {1.0, 0.0}), FatalError);
}

} // namespace
} // namespace gables
