/**
 * @file
 * Tests for the shrink-to-fit provisioner: it must recover the
 * paper's Figure 6d sizing on its own, always produce feasible
 * minimal designs, and report infeasible starts honestly.
 */

#include <gtest/gtest.h>

#include "analysis/provisioner.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

TEST(Provisioner, RecoversFigure6dBpeak)
{
    // Start from the wasteful 30 GB/s design of Figure 6c with the
    // reuse fix applied; demand the full 160 Gops/s. The provisioner
    // must shrink Bpeak to the paper's sufficient 20 GB/s (nothing
    // else can shrink: the design is otherwise balanced).
    SocSpec start = SocCatalog::paperTwoIp().withBpeak(30e9);
    Requirement req{Usecase::twoIp("6d", 0.75, 8.0, 8.0), 160e9};
    ProvisionedDesign r = Provisioner::minimize(start, {req});
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.soc.bpeak(), 20e9, 20e9 * 0.01);
    EXPECT_NEAR(r.soc.ip(0).bandwidth, 5e9, 5e9 * 0.01);
    EXPECT_NEAR(r.soc.ip(1).bandwidth, 15e9, 15e9 * 0.01);
    // A1 shrinks to 3: the link roofline min(B1*I1, A1*Ppeak) binds
    // at B1*I1 = 120, so the compute roof only needs A1*40 >= 120.
    EXPECT_NEAR(r.soc.ip(1).acceleration, 3.0, 3.0 * 0.01);
    EXPECT_GE(r.achieved[0], 160e9 * 0.999);
}

TEST(Provisioner, RelaxedTargetShrinksEverything)
{
    // Demand only a quarter of the capability: every rate knob
    // shrinks to about a quarter.
    SocSpec start = SocCatalog::paperTwoIpBalanced();
    Requirement req{Usecase::twoIp("u", 0.75, 8.0, 8.0), 40e9};
    ProvisionedDesign r = Provisioner::minimize(start, {req});
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.soc.bpeak(), 5e9, 5e9 * 0.01);
    EXPECT_GE(r.achieved[0], 40e9 * 0.999);
    EXPECT_LE(r.achieved[0], 40e9 * 1.05);
}

TEST(Provisioner, InfeasibleStartReported)
{
    SocSpec start = SocCatalog::paperTwoIp(); // caps at 40 Gops/s
    Requirement req{Usecase::twoIp("u", 0.0, 8.0, 1.0), 100e9};
    ProvisionedDesign r = Provisioner::minimize(start, {req});
    EXPECT_FALSE(r.feasible);
    EXPECT_DOUBLE_EQ(r.soc.bpeak(), start.bpeak()); // untouched
    EXPECT_LT(r.achieved[0], 100e9);
}

TEST(Provisioner, MultiUsecasePortfolio)
{
    // Two usecases with different binding resources: the design must
    // keep enough of BOTH (the paper: the average is immaterial,
    // every usecase must run).
    SocSpec start("big", 7.5e9, 60e9,
                  {IpSpec{"CPU", 1.0, 30e9},
                   IpSpec{"GPU", 60.0, 48e9}});
    Requirement compute{Usecase::twoIp("compute", 0.98, 16.0, 64.0),
                        200e9};
    Requirement stream{Usecase::twoIp("stream", 0.8, 1.0, 0.5), 15e9};
    ProvisionedDesign r =
        Provisioner::minimize(start, {compute, stream});
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.achieved[0], 200e9 * 0.999);
    EXPECT_GE(r.achieved[1], 15e9 * 0.999);
    // The streaming usecase needs 0.8/0.5 + 0.2/1 = 1.8 B/op at
    // 15 Gops/s -> Bpeak >= 27 GB/s even though the compute usecase
    // alone would allow far less.
    EXPECT_GE(r.soc.bpeak(), 26.9e9);
}

TEST(Provisioner, ResultIsLocallyMinimal)
{
    // Shrinking any knob of the result by 10% must violate a target.
    SocSpec start = SocCatalog::paperTwoIp().withBpeak(30e9);
    Requirement req{Usecase::twoIp("6d", 0.75, 8.0, 8.0), 160e9};
    ProvisionedDesign r = Provisioner::minimize(start, {req});
    ASSERT_TRUE(r.feasible);
    EXPECT_FALSE(Provisioner::meetsAll(
        r.soc.withBpeak(r.soc.bpeak() * 0.9), {req}));
    for (size_t i = 0; i < r.soc.numIps(); ++i) {
        EXPECT_FALSE(Provisioner::meetsAll(
            r.soc.withIpBandwidth(i, r.soc.ip(i).bandwidth * 0.9),
            {req}))
            << "link " << i;
    }
    EXPECT_FALSE(Provisioner::meetsAll(
        r.soc.withIpAcceleration(1, r.soc.ip(1).acceleration * 0.9),
        {req}));
}

TEST(Provisioner, RandomizedDesignsStayFeasibleAndShrink)
{
    Rng rng(777);
    for (int trial = 0; trial < 10; ++trial) {
        SocSpec start("r", 10e9, 80e9,
                      {IpSpec{"A", 1.0, rng.logUniform(20e9, 60e9)},
                       IpSpec{"B", rng.logUniform(5.0, 40.0),
                              rng.logUniform(20e9, 60e9)}});
        Usecase u = Usecase::twoIp("u", rng.uniform(0.2, 0.8),
                                   rng.logUniform(0.5, 32.0),
                                   rng.logUniform(0.5, 32.0));
        double capability =
            GablesModel::evaluate(start, u).attainable;
        Requirement req{u, capability * rng.uniform(0.3, 0.9)};
        ProvisionedDesign r = Provisioner::minimize(start, {req});
        ASSERT_TRUE(r.feasible) << "trial " << trial;
        EXPECT_GE(r.achieved[0], req.minPerf * 0.999);
        // Cost never grows.
        EXPECT_LE(r.soc.bpeak(), start.bpeak() * 1.001);
        for (size_t i = 0; i < start.numIps(); ++i) {
            EXPECT_LE(r.soc.ip(i).bandwidth,
                      start.ip(i).bandwidth * 1.001);
            EXPECT_LE(r.soc.ip(i).acceleration,
                      start.ip(i).acceleration * 1.001);
        }
    }
}

TEST(Provisioner, InvalidInputsRejected)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    EXPECT_THROW(Provisioner::minimize(soc, {}), FatalError);
    Requirement bad{Usecase::twoIp("u", 0.5, 1.0, 1.0), 0.0};
    EXPECT_THROW(Provisioner::minimize(soc, {bad}), FatalError);
    Requirement mismatched{Usecase("m", {IpWork{1.0, 1.0}}), 1e9};
    EXPECT_THROW(Provisioner::minimize(soc, {mismatched}),
                 FatalError);
    Provisioner::Options opts;
    opts.tolerance = 0.0;
    Requirement ok{Usecase::twoIp("u", 0.5, 1.0, 1.0), 1e9};
    EXPECT_THROW(Provisioner::minimize(soc, {ok}, opts), FatalError);
}

} // namespace
} // namespace gables
