/**
 * @file
 * Tests for Monte-Carlo robustness analysis.
 */

#include <gtest/gtest.h>

#include "analysis/robustness.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

TEST(Robustness, DeterministicForFixedSeed)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    Robustness::Options opts;
    opts.samples = 200;
    opts.seed = 42;
    RobustnessReport a = Robustness::analyze(soc, u, opts);
    RobustnessReport b = Robustness::analyze(soc, u, opts);
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
    EXPECT_DOUBLE_EQ(a.p5, b.p5);
    EXPECT_DOUBLE_EQ(a.p95, b.p95);
}

TEST(Robustness, QuantilesOrdered)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{0.2, 4.0}, IpWork{0.7, 8.0},
                    IpWork{0.1, 1.0}});
    RobustnessReport r = Robustness::analyze(soc, u);
    EXPECT_LE(r.p5, r.p50);
    EXPECT_LE(r.p50, r.p95);
    EXPECT_GT(r.p5, 0.0);
    EXPECT_EQ(r.samples, 1000);
}

TEST(Robustness, NoJitterCollapsesToNominal)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    Robustness::Options opts;
    opts.samples = 50;
    opts.intensityJitter = 1.0;
    opts.fractionJitter = 1.0;
    RobustnessReport r = Robustness::analyze(soc, u, opts);
    EXPECT_NEAR(r.mean, r.nominal, r.nominal * 1e-12);
    EXPECT_NEAR(r.p5, r.p95, r.nominal * 1e-12);
}

TEST(Robustness, BalancedDesignIsFragile)
{
    // Figure 6d sits at the intersection of all three rooflines:
    // most perturbations knock it off the peak, so the median and
    // mean fall visibly below nominal and the downside tail is deep
    // (the cost of perfect balance). The upside tail is real too —
    // jitter can land on a better work split — but small.
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    RobustnessReport r = Robustness::analyze(soc, u);
    EXPECT_DOUBLE_EQ(r.nominal, 160e9);
    EXPECT_LT(r.p50, r.nominal * 0.9);
    EXPECT_LT(r.mean, r.nominal * 0.9);
    EXPECT_LT(r.p5, r.nominal * 0.6);  // deep downside
    EXPECT_LT(r.p95, r.nominal * 1.5); // shallow upside
}

TEST(Robustness, TargetProbability)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    Robustness::Options opts;
    opts.samples = 500;
    opts.target = 1e9; // trivially met
    EXPECT_DOUBLE_EQ(
        Robustness::analyze(soc, u, opts).meetsTargetProbability,
        1.0);
    opts.target = 500e9; // unreachable under any bounded jitter
    EXPECT_DOUBLE_EQ(
        Robustness::analyze(soc, u, opts).meetsTargetProbability,
        0.0);
    opts.target = 100e9; // sometimes met
    double p = Robustness::analyze(soc, u, opts)
                   .meetsTargetProbability;
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
}

TEST(Robustness, BottleneckSharesSumToOne)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    RobustnessReport r = Robustness::analyze(soc, u);
    double sum = 0.0;
    for (const auto &[ip, share] : r.bottleneckShare) {
        EXPECT_GE(ip, -1);
        EXPECT_LE(ip, 1);
        sum += share;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Figure 6b is deep in memory-bound territory: the memory
    // interface dominates even under jitter.
    EXPECT_GT(r.bottleneckShare.at(-1), 0.5);
}

TEST(Robustness, IdleIpsStayIdle)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{1.0, 8.0}, IpWork{0.0, 1.0},
                    IpWork{0.0, 1.0}});
    RobustnessReport r = Robustness::analyze(soc, u);
    // With only the CPU active, the bottleneck is always IP 0 or
    // memory, never the idle GPU/DSP.
    for (const auto &[ip, share] : r.bottleneckShare)
        EXPECT_TRUE(ip == 0 || ip == -1) << "ip " << ip;
}

TEST(Robustness, InvalidOptionsRejected)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    Robustness::Options opts;
    opts.samples = 0;
    EXPECT_THROW(Robustness::analyze(soc, u, opts), FatalError);
    opts.samples = 10;
    opts.intensityJitter = 0.5;
    EXPECT_THROW(Robustness::analyze(soc, u, opts), FatalError);
}

} // namespace
} // namespace gables
