/**
 * @file
 * Tests for sensitivity/elasticity analysis: the binding resource
 * shows elasticity ~1, slack resources ~0.
 */

#include <gtest/gtest.h>

#include "analysis/sensitivity.h"
#include "soc/catalog.h"

namespace gables {
namespace {

/** Find an entry by parameter label. */
double
entryFor(const std::vector<SensitivityEntry> &entries,
         const std::string &name)
{
    for (const SensitivityEntry &e : entries) {
        if (e.parameter == name)
            return e.elasticity;
    }
    ADD_FAILURE() << "no sensitivity entry '" << name << "'";
    return -999.0;
}

TEST(Sensitivity, MemoryBoundUsecaseTracksBpeak)
{
    // Figure 6b: memory is the bottleneck, so Bpeak has elasticity 1
    // and compute knobs have 0.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    auto entries = Sensitivity::analyze(soc, u);
    EXPECT_NEAR(entryFor(entries, "Bpeak"), 1.0, 1e-6);
    EXPECT_NEAR(entryFor(entries, "Ppeak"), 0.0, 1e-9);
    EXPECT_NEAR(entryFor(entries, "A[1]"), 0.0, 1e-9);
    EXPECT_NEAR(entryFor(entries, "B[0]"), 0.0, 1e-9);
}

TEST(Sensitivity, ComputeBoundUsecaseTracksPpeak)
{
    // Figure 6a: the CPU's compute roof binds.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6a", 0.0, 8.0, 0.1);
    auto entries = Sensitivity::analyze(soc, u);
    EXPECT_NEAR(entryFor(entries, "Ppeak"), 1.0, 1e-6);
    EXPECT_NEAR(entryFor(entries, "Bpeak"), 0.0, 1e-9);
}

TEST(Sensitivity, LinkBoundUsecaseTracksIpBandwidthAndIntensity)
{
    // Figure 6c: IP[1]'s link with poor reuse binds, so both B[1]
    // and I[1] carry elasticity ~1.
    SocSpec soc = SocCatalog::paperTwoIp().withBpeak(30e9);
    Usecase u = Usecase::twoIp("6c", 0.75, 8.0, 0.1);
    auto entries = Sensitivity::analyze(soc, u);
    EXPECT_NEAR(entryFor(entries, "B[1]"), 1.0, 1e-6);
    EXPECT_NEAR(entryFor(entries, "I[1]"), 1.0, 0.05);
    EXPECT_NEAR(entryFor(entries, "Ppeak"), 0.0, 1e-9);
}

TEST(Sensitivity, BalancedDesignSharesElasticity)
{
    // Figure 6d: every resource binds simultaneously, so no single
    // knob gives a full unit of improvement (growing one alone
    // leaves the others binding -> elasticity ~0.5 from the central
    // difference: shrink hurts, grow does not help).
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    auto entries = Sensitivity::analyze(soc, u);
    double bpeak = entryFor(entries, "Bpeak");
    EXPECT_GT(bpeak, 0.05);
    EXPECT_LT(bpeak, 1.0);
}

TEST(Sensitivity, SkipsIdleAndInfiniteIntensities)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u("u", {IpWork{1.0, inf}, IpWork{0.0, 1.0}});
    auto entries = Sensitivity::analyze(soc, u);
    for (const SensitivityEntry &e : entries) {
        EXPECT_NE(e.parameter, "I[0]"); // infinite intensity skipped
        EXPECT_NE(e.parameter, "I[1]"); // idle IP skipped
    }
}

TEST(Sensitivity, ElasticityHelperLinearFunction)
{
    // perf = c * x has elasticity exactly 1; perf = c has 0.
    EXPECT_NEAR(Sensitivity::elasticity(
                    5.0, [](double x) { return 3.0 * x; }),
                1.0, 1e-9);
    EXPECT_NEAR(Sensitivity::elasticity(5.0,
                                        [](double) { return 7.0; }),
                0.0, 1e-12);
    // perf = x^2 has elasticity 2.
    EXPECT_NEAR(Sensitivity::elasticity(
                    5.0, [](double x) { return x * x; }),
                2.0, 1e-6);
}

TEST(Sensitivity, EntryCountMatchesParameters)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{0.3, 4.0}, IpWork{0.6, 2.0},
                    IpWork{0.1, 1.0}});
    auto entries = Sensitivity::analyze(soc, u);
    // Ppeak + Bpeak + A[1], A[2] + B[0..2] + I[0..2] = 10.
    EXPECT_EQ(entries.size(), 10u);
}

} // namespace
} // namespace gables
