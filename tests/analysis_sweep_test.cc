/**
 * @file
 * Unit tests for the sweep drivers.
 */

#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "core/evaluator.h"
#include "core/gables.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

std::vector<double>
eighths()
{
    std::vector<double> f;
    for (int i = 0; i <= 8; ++i)
        f.push_back(i / 8.0);
    return f;
}

TEST(MixingSweep, NormalizedStartsAtOne)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Series s = Sweep::mixing(soc, 1.0, 1.0, eighths());
    ASSERT_EQ(s.x.size(), 9u);
    EXPECT_DOUBLE_EQ(s.x.front(), 0.0);
    EXPECT_DOUBLE_EQ(s.y.front(), 1.0);
}

TEST(MixingSweep, HighIntensityApproachesAcceleration)
{
    // At I = 1024 everything is compute-bound; all work on the GPU
    // gives the full A1 = 46.6x speedup in the model.
    SocSpec soc = SocCatalog::snapdragon835();
    Series s = Sweep::mixing(soc, 1024.0, 1024.0, {0.0, 1.0});
    EXPECT_NEAR(s.y.back(), soc.ip(1).acceleration, 1e-9);
}

TEST(MixingSweep, UnnormalizedReturnsOpsRates)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Series s = Sweep::mixing(soc, 1024.0, 1024.0, {0.0}, false);
    EXPECT_DOUBLE_EQ(s.y.front(), 7.5e9);
}

TEST(MixingSweep, RejectsBadInputs)
{
    SocSpec one("one", 1e9, 1e9, {IpSpec{"CPU", 1.0, 1e9}});
    EXPECT_THROW(Sweep::mixing(one, 1.0, 1.0, {0.0}), FatalError);
    SocSpec soc = SocCatalog::snapdragon835();
    EXPECT_THROW(Sweep::mixing(soc, 1.0, 1.0, {1.5}), FatalError);
}

TEST(BpeakSweep, SaturatesOnceSufficient)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    Series s = Sweep::bpeak(soc, u, {5e9, 10e9, 20e9, 40e9, 80e9});
    // Monotone nondecreasing...
    for (size_t i = 1; i < s.y.size(); ++i)
        EXPECT_GE(s.y[i], s.y[i - 1]);
    // ...and flat beyond the sufficient 20 GB/s (Figure 6d).
    EXPECT_DOUBLE_EQ(s.y[2], 160e9);
    EXPECT_DOUBLE_EQ(s.y[4], 160e9);
}

TEST(IntensitySweep, ReproducesFigure6dMove)
{
    // Raising I1 from 0.1 to 8 on the 30 GB/s design lifts
    // performance from 2 to 160 Gops/s? No: at Bpeak = 30 the memory
    // bound at I1 = 8 allows min(160, 160, 30*8=240) = 160.
    SocSpec soc = SocCatalog::paperTwoIp().withBpeak(30e9);
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    Series s = Sweep::intensity(soc, u, 1, {0.1, 8.0});
    EXPECT_DOUBLE_EQ(s.y[0], 2e9);
    EXPECT_DOUBLE_EQ(s.y[1], 160e9);
}

TEST(AccelerationSweep, SaturatesAtOtherBounds)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    Series s = Sweep::acceleration(soc, u, 1, {1.0, 5.0, 50.0, 500.0});
    for (size_t i = 1; i < s.y.size(); ++i)
        EXPECT_GE(s.y[i], s.y[i - 1]);
    // Beyond A1 = 5 the link (B1 * I1 = 120/0.75 = 160) binds: more
    // acceleration is the over-design the paper warns about.
    EXPECT_DOUBLE_EQ(s.y[1], 160e9);
    EXPECT_DOUBLE_EQ(s.y[3], 160e9);
}

TEST(AccelerationSweep, RefusesA0)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(Sweep::acceleration(soc, u, 0, {2.0}), FatalError);
}

TEST(IpBandwidthSweep, Monotone)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    Series s = Sweep::ipBandwidth(soc, u, 1,
                                  {1e9, 5e9, 15e9, 50e9});
    for (size_t i = 1; i < s.y.size(); ++i)
        EXPECT_GE(s.y[i], s.y[i - 1]);
}

// The evaluator-backed drivers must reproduce a direct legacy loop
// (one GablesModel::evaluate() per rebuilt spec) bit-for-bit, both
// serial and parallel.
TEST(SweepBitIdentity, DriversMatchLegacyLoop)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    std::vector<double> bpeaks = {5e9, 10e9, 20e9, 40e9, 80e9};
    std::vector<double> accels = {1.0, 2.5, 5.0, 50.0};
    std::vector<double> bands = {1e9, 5e9, 15e9, 50e9};
    std::vector<double> intensities = {0.05, 0.1, 1.0, 8.0, 64.0};

    for (int jobs : {1, 0}) {
        Series s = Sweep::bpeak(soc, u, bpeaks, jobs);
        for (size_t i = 0; i < bpeaks.size(); ++i)
            EXPECT_EQ(s.y[i],
                      GablesModel::evaluate(soc.withBpeak(bpeaks[i]), u)
                          .attainable)
                << "bpeak jobs " << jobs << " i " << i;

        s = Sweep::acceleration(soc, u, 1, accels, jobs);
        for (size_t i = 0; i < accels.size(); ++i)
            EXPECT_EQ(
                s.y[i],
                GablesModel::evaluate(soc.withIpAcceleration(1,
                                                             accels[i]),
                                      u)
                    .attainable)
                << "accel jobs " << jobs << " i " << i;

        s = Sweep::ipBandwidth(soc, u, 1, bands, jobs);
        for (size_t i = 0; i < bands.size(); ++i)
            EXPECT_EQ(
                s.y[i],
                GablesModel::evaluate(soc.withIpBandwidth(1, bands[i]),
                                      u)
                    .attainable)
                << "band jobs " << jobs << " i " << i;

        s = Sweep::intensity(soc, u, 1, intensities, jobs);
        for (size_t i = 0; i < intensities.size(); ++i)
            EXPECT_EQ(
                s.y[i],
                GablesModel::evaluate(
                    soc, u.withWork(1, IpWork{u.fraction(1),
                                              intensities[i]}))
                    .attainable)
                << "intensity jobs " << jobs << " i " << i;
    }
}

TEST(SweepBitIdentity, MixingMatchesLegacyLoop)
{
    SocSpec soc = SocCatalog::snapdragon835();
    std::vector<double> fractions = eighths();
    auto usecase_for = [&](double f) {
        std::vector<IpWork> work(soc.numIps());
        work[0] = IpWork{1.0 - f, 4.0};
        work[1] = IpWork{f, 32.0};
        for (size_t i = 2; i < work.size(); ++i)
            work[i] = IpWork{0.0, 1.0};
        return Usecase("mixing", std::move(work));
    };
    for (int jobs : {1, 0}) {
        Series s = Sweep::mixing(soc, 4.0, 32.0, fractions, true, jobs);
        double base =
            GablesModel::evaluate(soc, usecase_for(0.0)).attainable;
        for (size_t i = 0; i < fractions.size(); ++i)
            EXPECT_EQ(s.y[i],
                      GablesModel::evaluate(soc, usecase_for(fractions[i]))
                              .attainable /
                          base)
                << "jobs " << jobs << " i " << i;
    }
}

// Direct A/B across the runtime toggle: the same driver call with
// the packed path on and off must produce byte-identical series
// (partial-pack tails included). This pins the `--no-simd` escape
// hatch beyond the legacy-loop comparisons above.
TEST(SweepBitIdentity, PackedToggleIsByteIdentical)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    // 11 points: one full pack plus a 3-lane tail at kWidth = 8.
    std::vector<double> intensities;
    for (int i = 0; i < 11; ++i)
        intensities.push_back(0.05 * (i + 1) * (i + 1));

    Series packed = [&] {
        simd::ScopedEnable on(true);
        return Sweep::intensity(soc, u, 1, intensities);
    }();
    Series scalar = [&] {
        simd::ScopedEnable off(false);
        return Sweep::intensity(soc, u, 1, intensities);
    }();
    ASSERT_EQ(packed.y.size(), scalar.y.size());
    for (size_t i = 0; i < packed.y.size(); ++i)
        EXPECT_EQ(packed.y[i], scalar.y[i]) << "i " << i;

    Series packed_mix = [&] {
        simd::ScopedEnable on(true);
        return Sweep::mixing(soc, 4.0, 32.0, eighths());
    }();
    Series scalar_mix = [&] {
        simd::ScopedEnable off(false);
        return Sweep::mixing(soc, 4.0, 32.0, eighths());
    }();
    ASSERT_EQ(packed_mix.y.size(), scalar_mix.y.size());
    for (size_t i = 0; i < packed_mix.y.size(); ++i)
        EXPECT_EQ(packed_mix.y[i], scalar_mix.y[i]) << "i " << i;
}

TEST(CustomSweep, AppliesCallback)
{
    Series s = Sweep::custom("squares", {1.0, 2.0, 3.0},
                             [](double x) { return x * x; });
    EXPECT_EQ(s.label, "squares");
    EXPECT_DOUBLE_EQ(s.y[2], 9.0);
}

} // namespace
} // namespace gables
