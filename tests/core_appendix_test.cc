/**
 * @file
 * Exact reproduction of the paper's appendix: the specific numbers
 * behind Figures 6a-6d. These are the library's ground-truth
 * anchors — every value here is printed in the paper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/gables.h"
#include "soc/catalog.h"

namespace gables {
namespace {

TEST(Appendix, Figure6aAllWorkOnCpu)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6a", 0.0, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, u);

    // 1/TIP[0] = MIN(6*8, 40)/1.0 = 40.
    EXPECT_DOUBLE_EQ(r.ips[0].perfBound, 40e9);
    // IP[1] is moot (f = 0): omitted from the bound.
    EXPECT_TRUE(std::isinf(r.ips[1].perfBound));
    // 1/Tmemory = 10 * 8 = 80 (Iavg = 8 since f = 0).
    EXPECT_DOUBLE_EQ(r.memoryPerfBound, 80e9);
    EXPECT_DOUBLE_EQ(r.averageIntensity, 8.0);
    // Pattainable = MIN(40, -, 80) = 40 Gops/s.
    EXPECT_DOUBLE_EQ(r.attainable, 40e9);
    EXPECT_EQ(r.bottleneckIp, 0);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpCompute);
}

TEST(Appendix, Figure6bOffloadDropsPerformance)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, u);

    // 1/TIP[0] = MIN(6*8, 40)/0.25 = 160.
    EXPECT_DOUBLE_EQ(r.ips[0].perfBound, 160e9);
    // 1/TIP[1] = MIN(15*0.1, 5*40)/0.75 = 1.5/0.75 = 2.
    EXPECT_DOUBLE_EQ(r.ips[1].perfBound, 2e9);
    // Iavg = 1/[(0.25/8) + (0.75/0.1)] = 0.13278.
    EXPECT_NEAR(r.averageIntensity, 0.13278, 5e-6);
    // 1/Tmemory = 10 * 0.13278 = 1.3.
    EXPECT_NEAR(r.memoryPerfBound, 1.3278e9, 1e6);
    // Pattainable = MIN(160, 2, 1.3) = 1.3 Gops/s.
    EXPECT_NEAR(r.attainable, 1.3278e9, 1e6);
    EXPECT_EQ(r.bottleneckIp, -1);
    EXPECT_EQ(r.bottleneck, BottleneckKind::Memory);
}

TEST(Appendix, Figure6cMoreBandwidthBarelyHelps)
{
    SocSpec soc = SocCatalog::paperTwoIp().withBpeak(30e9);
    Usecase u = Usecase::twoIp("6c", 0.75, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, u);

    // 1/Tmemory = 30 * 0.13278 = 3.98.
    EXPECT_NEAR(r.memoryPerfBound, 3.983e9, 2e6);
    // Pattainable = MIN(160, 2, 3.98) = 2.0 Gops/s: now IP[1]'s link
    // bandwidth with poor reuse binds.
    EXPECT_DOUBLE_EQ(r.attainable, 2e9);
    EXPECT_EQ(r.bottleneckIp, 1);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpBandwidth);
}

TEST(Appendix, Figure6dBalancedDesign)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced(); // Bpeak = 20 GB/s
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    GablesResult r = GablesModel::evaluate(soc, u);

    // 1/TIP[0] = MIN(6*8, 40)/0.25 = 160.
    EXPECT_DOUBLE_EQ(r.ips[0].perfBound, 160e9);
    // 1/TIP[1] = MIN(15*8, 5*40)/0.75 = 120/0.75 = 160.
    EXPECT_DOUBLE_EQ(r.ips[1].perfBound, 160e9);
    // 1/Tmemory = 20 * 8 = 160.
    EXPECT_DOUBLE_EQ(r.memoryPerfBound, 160e9);
    // All three rooflines equal at I = 8: a perfectly balanced design.
    EXPECT_DOUBLE_EQ(r.attainable, 160e9);
}

TEST(Appendix, Figure6SequenceIsTheStory)
{
    // The paper's narrative: 40 -> 1.3 -> 2.0 -> 160 Gops/s.
    SocSpec base = SocCatalog::paperTwoIp();
    double a = GablesModel::evaluate(
                   base, Usecase::twoIp("6a", 0.0, 8.0, 0.1))
                   .attainable;
    double b = GablesModel::evaluate(
                   base, Usecase::twoIp("6b", 0.75, 8.0, 0.1))
                   .attainable;
    double c = GablesModel::evaluate(
                   base.withBpeak(30e9),
                   Usecase::twoIp("6c", 0.75, 8.0, 0.1))
                   .attainable;
    double d = GablesModel::evaluate(
                   base.withBpeak(20e9),
                   Usecase::twoIp("6d", 0.75, 8.0, 8.0))
                   .attainable;
    EXPECT_DOUBLE_EQ(a, 40e9);
    EXPECT_NEAR(b, 1.3278e9, 1e6);
    EXPECT_DOUBLE_EQ(c, 2e9);
    EXPECT_DOUBLE_EQ(d, 160e9);
    // Naive offload hurts; a balanced redesign wins 4x over CPU-only.
    EXPECT_LT(b, a);
    EXPECT_LT(c, a);
    EXPECT_DOUBLE_EQ(d / a, 4.0);
}

TEST(Appendix, PerformanceFormMatchesAppendixToo)
{
    SocSpec base = SocCatalog::paperTwoIp();
    EXPECT_DOUBLE_EQ(GablesModel::attainablePerfForm(
                         base, Usecase::twoIp("6a", 0.0, 8.0, 0.1)),
                     40e9);
    EXPECT_NEAR(GablesModel::attainablePerfForm(
                    base, Usecase::twoIp("6b", 0.75, 8.0, 0.1)),
                1.3278e9, 1e6);
    EXPECT_DOUBLE_EQ(GablesModel::attainablePerfForm(
                         base.withBpeak(20e9),
                         Usecase::twoIp("6d", 0.75, 8.0, 8.0)),
                     160e9);
}

} // namespace
} // namespace gables
