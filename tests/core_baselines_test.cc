/**
 * @file
 * Unit tests for the baseline models: Amdahl's Law variants and the
 * MultiAmdahl optimizer the paper positions Gables against.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/amdahl.h"
#include "core/multiamdahl.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

TEST(Amdahl, ClassicFormula)
{
    // Textbook: f = 0.5, s = 2 -> 1/(0.5 + 0.25) = 4/3.
    EXPECT_NEAR(AmdahlModel::speedup(0.5, 2.0), 4.0 / 3.0, 1e-12);
    // No accelerated fraction: no speedup.
    EXPECT_DOUBLE_EQ(AmdahlModel::speedup(0.0, 100.0), 1.0);
    // Everything accelerated: full speedup.
    EXPECT_DOUBLE_EQ(AmdahlModel::speedup(1.0, 100.0), 100.0);
}

TEST(Amdahl, Limit)
{
    EXPECT_DOUBLE_EQ(AmdahlModel::limit(0.9), 10.0);
    EXPECT_DOUBLE_EQ(AmdahlModel::limit(0.0), 1.0);
    EXPECT_TRUE(std::isinf(AmdahlModel::limit(1.0)));
}

TEST(Amdahl, SpeedupApproachesLimit)
{
    double f = 0.95;
    EXPECT_LT(AmdahlModel::speedup(f, 1e9), AmdahlModel::limit(f));
    EXPECT_NEAR(AmdahlModel::speedup(f, 1e9), AmdahlModel::limit(f),
                1e-5);
}

TEST(Amdahl, InvalidInputs)
{
    EXPECT_THROW(AmdahlModel::speedup(-0.1, 2.0), FatalError);
    EXPECT_THROW(AmdahlModel::speedup(1.1, 2.0), FatalError);
    EXPECT_THROW(AmdahlModel::speedup(0.5, 0.0), FatalError);
}

TEST(Amdahl, Gustafson)
{
    // f = 0.5, s = 10: scaled speedup = 0.5 + 5 = 5.5.
    EXPECT_DOUBLE_EQ(AmdahlModel::gustafsonSpeedup(0.5, 10.0), 5.5);
    // Gustafson >= Amdahl for the same f, s.
    for (double f : {0.1, 0.5, 0.9}) {
        EXPECT_GE(AmdahlModel::gustafsonSpeedup(f, 16.0),
                  AmdahlModel::speedup(f, 16.0));
    }
}

TEST(Amdahl, HillMartySymmetric)
{
    // Hill-Marty 2008, n = 16: one 16-resource core vs 16 base cores.
    // f = 0.5: big-core chip = sqrt(16)/1 applied to both halves = 4.
    EXPECT_NEAR(AmdahlModel::symmetricSpeedup(0.5, 16.0, 16.0), 4.0,
                1e-12);
    // r = 1, f = 1: perfectly parallel on 16 cores -> 16.
    EXPECT_NEAR(AmdahlModel::symmetricSpeedup(1.0, 16.0, 1.0), 16.0,
                1e-12);
}

TEST(Amdahl, HillMartyAsymmetricBeatsSymmetricAtHighF)
{
    // A big core plus many small cores wins for mixed workloads.
    double f = 0.9, n = 64.0;
    double best_sym = 0.0, best_asym = 0.0;
    for (double r = 1.0; r <= n; r *= 2.0) {
        best_sym = std::max(best_sym,
                            AmdahlModel::symmetricSpeedup(f, n, r));
        best_asym = std::max(best_asym,
                             AmdahlModel::asymmetricSpeedup(f, n, r));
    }
    EXPECT_GE(best_asym, best_sym);
}

TEST(Amdahl, CorePerfPollack)
{
    EXPECT_DOUBLE_EQ(AmdahlModel::corePerf(4.0), 2.0);
    EXPECT_DOUBLE_EQ(AmdahlModel::corePerf(1.0), 1.0);
    EXPECT_THROW(AmdahlModel::corePerf(0.0), FatalError);
}

TEST(MultiAmdahl, SymmetricTasksGetEqualAreas)
{
    MultiAmdahlModel model({{"a", 0.5, 1.0, 0.5},
                            {"b", 0.5, 1.0, 0.5}},
                           10.0);
    MultiAmdahlResult r = model.optimize();
    EXPECT_NEAR(r.areas[0], 5.0, 1e-6);
    EXPECT_NEAR(r.areas[1], 5.0, 1e-6);
    EXPECT_NEAR(r.areas[0] + r.areas[1], 10.0, 1e-9);
}

TEST(MultiAmdahl, HeavierTaskGetsMoreArea)
{
    MultiAmdahlModel model({{"light", 0.2, 1.0, 0.5},
                            {"heavy", 0.8, 1.0, 0.5}},
                           10.0);
    MultiAmdahlResult r = model.optimize();
    EXPECT_GT(r.areas[1], r.areas[0]);
    EXPECT_NEAR(r.areas[0] + r.areas[1], 10.0, 1e-9);
}

TEST(MultiAmdahl, KnownClosedForm)
{
    // With perf = a^0.5 and two tasks, a_i is proportional to
    // t_i^(2/3); check against the analytic allocation.
    double t0 = 0.2, t1 = 0.8, budget = 10.0;
    MultiAmdahlModel model({{"a", t0, 1.0, 0.5}, {"b", t1, 1.0, 0.5}},
                           budget);
    MultiAmdahlResult r = model.optimize();
    double w0 = std::pow(t0, 2.0 / 3.0);
    double w1 = std::pow(t1, 2.0 / 3.0);
    EXPECT_NEAR(r.areas[0], budget * w0 / (w0 + w1), 1e-6);
    EXPECT_NEAR(r.areas[1], budget * w1 / (w0 + w1), 1e-6);
}

TEST(MultiAmdahl, OptimumBeatsPerturbations)
{
    MultiAmdahlModel model({{"a", 0.3, 2.0, 0.5},
                            {"b", 0.5, 1.0, 0.4},
                            {"c", 0.2, 0.5, 0.6}},
                           20.0);
    MultiAmdahlResult r = model.optimize();
    double best = model.timeFor(r.areas);
    // Shift 5% of area between every pair: never better.
    for (size_t i = 0; i < 3; ++i) {
        for (size_t j = 0; j < 3; ++j) {
            if (i == j)
                continue;
            auto areas = r.areas;
            double delta = 0.05 * areas[i];
            areas[i] -= delta;
            areas[j] += delta;
            EXPECT_GE(model.timeFor(areas), best * (1.0 - 1e-9));
        }
    }
}

TEST(MultiAmdahl, ZeroWorkTasksGetNoArea)
{
    MultiAmdahlModel model({{"a", 1.0, 1.0, 0.5},
                            {"idle", 0.0, 1.0, 0.5}},
                           8.0);
    MultiAmdahlResult r = model.optimize();
    EXPECT_DOUBLE_EQ(r.areas[1], 0.0);
    EXPECT_NEAR(r.areas[0], 8.0, 1e-9);
    // time = 1 / sqrt(8).
    EXPECT_NEAR(r.time, 1.0 / std::sqrt(8.0), 1e-9);
}

TEST(MultiAmdahl, InvalidInputs)
{
    EXPECT_THROW(MultiAmdahlModel({}, 1.0), FatalError);
    EXPECT_THROW(MultiAmdahlModel({{"a", 1.0, 1.0, 0.5}}, 0.0),
                 FatalError);
    EXPECT_THROW(MultiAmdahlModel({{"a", 0.7, 1.0, 0.5}}, 1.0),
                 FatalError); // shares must sum to 1
    EXPECT_THROW(MultiAmdahlModel({{"a", 1.0, 0.0, 0.5}}, 1.0),
                 FatalError);
    EXPECT_THROW(MultiAmdahlModel({{"a", 1.0, 1.0, 1.5}}, 1.0),
                 FatalError);
}

TEST(MultiAmdahl, FromGablesBridge)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    MultiAmdahlModel model = multiAmdahlFromGables(soc, u, 10.0);
    ASSERT_EQ(model.tasks().size(), 2u);
    EXPECT_DOUBLE_EQ(model.tasks()[0].timeShare, 0.25);
    EXPECT_DOUBLE_EQ(model.tasks()[1].timeShare, 0.75);
    EXPECT_DOUBLE_EQ(model.tasks()[1].efficiency, 5.0);
    MultiAmdahlResult r = model.optimize();
    EXPECT_NEAR(r.areas[0] + r.areas[1], 10.0, 1e-9);
    EXPECT_GT(r.performance, 0.0);
}

} // namespace
} // namespace gables
