/**
 * @file
 * Tests for the combined extensions evaluator: reductions to the
 * base model and to each single extension, plus the topological
 * interplay (buses carry full traffic, memory carries filtered).
 */

#include <gtest/gtest.h>

#include "core/combined.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

TEST(Combined, NoExtensionsReducesToBase)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    CombinedModel model;
    CombinedResult r = model.evaluate(soc, u);
    GablesResult base = GablesModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, base.attainable);
    EXPECT_EQ(r.bottleneck, CombinedBottleneck::Memory);
    EXPECT_TRUE(r.busTimes.empty());
}

TEST(Combined, MemsideOnlyMatchesExtension)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    MemSideMemory memside({1.0, 0.25});
    CombinedModel model;
    model.setMemSide(memside);
    EXPECT_DOUBLE_EQ(model.evaluate(soc, u).attainable,
                     memside.evaluate(soc, u).attainable);
}

TEST(Combined, InterconnectOnlyMatchesExtension)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    InterconnectModel ic({BusSpec{"slow", 1e9}}, {{true}, {true}});
    CombinedModel model;
    model.setInterconnect(ic);
    CombinedResult r = model.evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable,
                     ic.evaluate(soc, u).base.attainable);
    EXPECT_EQ(r.bottleneck, CombinedBottleneck::Bus);
    EXPECT_EQ(r.bottleneckBus, 0);
}

TEST(Combined, SramDoesNotRelieveBuses)
{
    // The SRAM is memory-side: a perfect cache removes the memory
    // term but the narrow bus still binds at the same value.
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    InterconnectModel ic({BusSpec{"slow", 1e9}}, {{true}, {true}});

    CombinedModel bus_only;
    bus_only.setInterconnect(ic);
    double with_bus = bus_only.evaluate(soc, u).attainable;

    CombinedModel both;
    both.setInterconnect(ic);
    both.setMemSide(MemSideMemory::uniform(2, 0.0));
    CombinedResult r = both.evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, with_bus);
    EXPECT_EQ(r.bottleneck, CombinedBottleneck::Bus);
    EXPECT_DOUBLE_EQ(r.memoryTime, 0.0);
}

TEST(Combined, SramRelievesMemoryBehindWideBuses)
{
    // Figure 6b with wide buses: memory binds at 1.33; a half-miss
    // SRAM doubles the memory bound and the GPU link takes over.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    CombinedModel model;
    model.setInterconnect(InterconnectModel({BusSpec{"wide", 1e15}},
                                            {{true}, {true}}));
    model.setMemSide(MemSideMemory::uniform(2, 0.5));
    CombinedResult r = model.evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, 2e9);
    EXPECT_EQ(r.bottleneck, CombinedBottleneck::Ip);
    EXPECT_EQ(r.bottleneckIp, 1);
}

TEST(Combined, BottleneckLabels)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    InterconnectModel ic({BusSpec{"skinny", 1e8}}, {{true}, {true}});
    CombinedModel model;
    model.setInterconnect(ic);
    CombinedResult r = model.evaluate(soc, u);
    EXPECT_EQ(r.bottleneck, CombinedBottleneck::Bus);
    EXPECT_EQ(r.bottleneckLabel(soc, model.interconnect()),
              "bus 'skinny'");

    CombinedModel base;
    CombinedResult rb = base.evaluate(soc, u);
    EXPECT_EQ(rb.bottleneckLabel(soc, nullptr),
              "memory interface (Bpeak, post-SRAM)");
}

TEST(Combined, NeverExceedsAnySingleExtension)
{
    // The combined bound is the min over all terms, so it can never
    // beat either extension alone (property over random inputs).
    Rng rng(321);
    SocSpec soc = SocCatalog::snapdragon835();
    InterconnectModel ic = InterconnectModel::hierarchy(
        {"hb", "sys"}, {40e9, 10e9}, {0, 0, 1}, 0.0);
    for (int trial = 0; trial < 20; ++trial) {
        auto f = rng.simplex(3);
        Usecase u("r", {IpWork{f[0], rng.logUniform(0.1, 64.0)},
                        IpWork{f[1], rng.logUniform(0.1, 64.0)},
                        IpWork{f[2], rng.logUniform(0.1, 64.0)}});
        MemSideMemory memside({rng.uniform(), rng.uniform(),
                               rng.uniform()});
        CombinedModel both;
        both.setInterconnect(ic);
        both.setMemSide(memside);
        double combined = both.evaluate(soc, u).attainable;
        EXPECT_LE(combined,
                  memside.evaluate(soc, u).attainable * (1 + 1e-12));
        EXPECT_LE(combined, ic.evaluate(soc, u).base.attainable *
                                (1 + 1e-12));
    }
}

TEST(Combined, MismatchedMemsideRejected)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    CombinedModel model;
    model.setMemSide(MemSideMemory::uniform(3, 0.5));
    EXPECT_THROW(model.evaluate(soc, u), FatalError);
}

} // namespace
} // namespace gables
