/**
 * @file
 * Tests for the energy/TDP extension.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/energy.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

/**
 * A mobile-flavoured energy model for the paper two-IP SoC: the CPU
 * costs 100 pJ/op, the accelerator 10 pJ/op (the paper's order-of-
 * magnitude efficiency claim), DRAM 20 pJ/byte, 0.5 W static.
 */
EnergyModel
mobileEnergy()
{
    return EnergyModel({100e-12, 10e-12}, 20e-12, 0.5);
}

TEST(Energy, UsecaseEnergyPerOpArithmetic)
{
    EnergyModel e = mobileEnergy();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    // 0.25*100p + 0.75*10p + (1/8 B/op)*20p = 25 + 7.5 + 2.5 pJ.
    EXPECT_NEAR(e.usecaseEnergyPerOp(u), 35e-12, 1e-18);
}

TEST(Energy, InfiniteIntensityCostsNoDramEnergy)
{
    EnergyModel e = mobileEnergy();
    constexpr double inf = std::numeric_limits<double>::infinity();
    Usecase u("pure", {IpWork{1.0, inf}, IpWork{0.0, 1.0}});
    EXPECT_NEAR(e.usecaseEnergyPerOp(u), 100e-12, 1e-18);
}

TEST(Energy, GenerousTdpLeavesRooflineBound)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    EnergyResult r = mobileEnergy().evaluate(soc, u, 100.0);
    EXPECT_DOUBLE_EQ(r.constrained, 160e9);
    EXPECT_FALSE(r.thermallyLimited);
    // Power at 160 Gops/s and 35 pJ/op: 5.6 W + 0.5 static.
    EXPECT_NEAR(r.power, 6.1, 0.01);
}

TEST(Energy, TightTdpBindsInstead)
{
    // The paper's 3 W phone budget: (3 - 0.5) / 35 pJ = 71.4 Gops/s,
    // well under the 160 Gops/s roofline bound.
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    EnergyResult r = mobileEnergy().evaluate(soc, u, 3.0);
    EXPECT_TRUE(r.thermallyLimited);
    EXPECT_NEAR(r.constrained, 2.5 / 35e-12, 1e6);
    EXPECT_NEAR(r.power, 3.0, 1e-9); // runs exactly at the cap
}

TEST(Energy, OffloadSavesEnergyEvenWhenPerfSimilar)
{
    // Moving work to the 10x-more-efficient accelerator cuts J/op.
    EnergyModel e = mobileEnergy();
    Usecase cpu_only = Usecase::twoIp("cpu", 0.0, 8.0, 8.0);
    Usecase offloaded = Usecase::twoIp("gpu", 0.9, 8.0, 8.0);
    EXPECT_GT(e.usecaseEnergyPerOp(cpu_only),
              2.0 * e.usecaseEnergyPerOp(offloaded));
}

TEST(Energy, EnergyForWorkIncludesStaticDuration)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    EnergyModel e = mobileEnergy();
    double total_ops = 160e9; // one second of work at full tilt
    double joules = e.energyForWork(soc, u, 100.0, total_ops);
    // 160e9 ops * 35 pJ + 1 s * 0.5 W = 5.6 + 0.5 J.
    EXPECT_NEAR(joules, 6.1, 0.01);
}

TEST(Energy, SlowerUnderTightTdpCostsMoreStaticEnergy)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("6d", 0.75, 8.0, 8.0);
    EnergyModel e = mobileEnergy();
    double relaxed = e.energyForWork(soc, u, 100.0, 160e9);
    double tight = e.energyForWork(soc, u, 3.0, 160e9);
    // Same dynamic energy, longer runtime -> more static energy
    // (race-to-idle in model form).
    EXPECT_GT(tight, relaxed);
}

TEST(Energy, InvalidInputsRejected)
{
    EXPECT_THROW(EnergyModel({}, 1e-12, 0.0), FatalError);
    EXPECT_THROW(EnergyModel({0.0}, 1e-12, 0.0), FatalError);
    EXPECT_THROW(EnergyModel({1e-12}, -1.0, 0.0), FatalError);
    EXPECT_THROW(EnergyModel({1e-12}, 1e-12, -0.5), FatalError);

    EnergyModel e = mobileEnergy();
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(e.evaluate(soc, u, 0.4), FatalError); // <= static
    EXPECT_THROW(e.energyPerOp(5), FatalError);

    Usecase three("t", {IpWork{0.4, 1.0}, IpWork{0.3, 1.0},
                        IpWork{0.3, 1.0}});
    EXPECT_THROW(e.usecaseEnergyPerOp(three), FatalError);
}

TEST(Energy, MoreTdpNeverHurts)
{
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{0.2, 4.0}, IpWork{0.7, 8.0},
                    IpWork{0.1, 1.0}});
    EnergyModel e({100e-12, 10e-12, 5e-12}, 20e-12, 0.3);
    double prev = 0.0;
    for (double tdp : {1.0, 2.0, 3.0, 5.0, 10.0}) {
        double p = e.evaluate(soc, u, tdp).constrained;
        EXPECT_GE(p, prev);
        prev = p;
    }
}

} // namespace
} // namespace gables
