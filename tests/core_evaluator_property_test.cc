/**
 * @file
 * Property tests for GablesEvaluator: over randomized SoCs, usecases,
 * and mutation sequences, the compiled evaluator must stay
 * bit-identical to a from-scratch GablesModel::evaluate() of the
 * equivalent (SocSpec, Usecase) pair — including idle (fi == 0) lanes
 * and infinite-intensity (no-traffic) lanes.
 *
 * The same harness also pins the packed path: every GablesEvalPack
 * lane must stay bit-identical to a scalar GablesEvaluator fed the
 * same mutation sequence, across random mutations and the degenerate
 * cases (idle lanes, infinite intensity, denormal-small bandwidth)
 * mixed into one pack.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/evaluator.h"
#include "core/gables.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t
bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** Mutable mirror of a (SocSpec, Usecase) pair that can be rebuilt
 * from scratch for the legacy path after every mutation. */
struct Pair {
    double ppeak = 0.0;
    double bpeak = 0.0;
    std::vector<IpSpec> ips;
    std::vector<IpWork> work;

    SocSpec soc() const { return SocSpec("fuzz", ppeak, bpeak, ips); }
    Usecase usecase() const { return Usecase("fuzz", work); }
};

Pair
randomPair(Rng &rng)
{
    Pair p;
    size_t n = static_cast<size_t>(rng.uniformInt(1, 8));
    p.ppeak = rng.logUniform(1e9, 1e12);
    p.bpeak = rng.logUniform(1e9, 1e11);
    p.ips.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        IpSpec ip;
        ip.name = "ip" + std::to_string(i);
        ip.acceleration = i == 0 ? 1.0 : rng.logUniform(0.1, 100.0);
        ip.bandwidth = rng.logUniform(1e8, 1e11);
        p.ips.push_back(ip);
    }
    std::vector<double> f = rng.simplex(n);
    p.work.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        IpWork w;
        w.fraction = f[i];
        // ~1 in 6 active lanes is pure compute (infinite intensity);
        // intensities otherwise span five orders of magnitude.
        w.intensity = rng.uniformInt(0, 5) == 0
                          ? kInf
                          : rng.logUniform(0.01, 1000.0);
        p.work.push_back(w);
    }
    // Idle roughly a third of the lanes (but never all of them),
    // handing their mass to the first surviving lane so the fractions
    // still sum to the simplex total bit-for-bit.
    for (size_t i = n; i-- > 1;) {
        if (rng.uniformInt(0, 2) == 0 && p.work[i].fraction > 0.0) {
            double moved = p.work[i].fraction;
            p.work[i].fraction = 0.0;
            p.work[i].intensity = 1.0;
            p.work[0].fraction += moved;
        }
    }
    return p;
}

void
expectBitIdentical(const GablesResult &a, const GablesResult &b,
                   uint64_t seed, int step)
{
    ASSERT_EQ(a.ips.size(), b.ips.size());
    EXPECT_EQ(bits(a.attainable), bits(b.attainable))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.memoryTime), bits(b.memoryTime))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.memoryPerfBound), bits(b.memoryPerfBound))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.averageIntensity), bits(b.averageIntensity))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.totalDataBytes), bits(b.totalDataBytes))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(a.bottleneckIp, b.bottleneckIp)
        << "seed " << seed << " step " << step;
    EXPECT_EQ(a.bottleneck, b.bottleneck)
        << "seed " << seed << " step " << step;
    for (size_t i = 0; i < a.ips.size(); ++i) {
        EXPECT_EQ(bits(a.ips[i].computeTime), bits(b.ips[i].computeTime))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].dataBytes), bits(b.ips[i].dataBytes))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].transferTime),
                  bits(b.ips[i].transferTime))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].time), bits(b.ips[i].time))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].perfBound), bits(b.ips[i].perfBound))
            << "seed " << seed << " step " << step << " ip " << i;
    }
}

TEST(EvaluatorProperty, FreshCompileMatchesLegacy)
{
    for (uint64_t seed = 0; seed < 400; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        SocSpec soc = p.soc();
        Usecase u = p.usecase();
        GablesEvaluator ev(soc, u);
        GablesResult legacy = GablesModel::evaluate(soc, u);
        GablesResult fast;
        ev.evaluate(fast);
        expectBitIdentical(fast, legacy, seed, -1);
        EXPECT_EQ(bits(ev.attainable()), bits(legacy.attainable))
            << "seed " << seed;
    }
}

TEST(EvaluatorProperty, MutationSequencesMatchRebuild)
{
    GablesResult fast; // reused scratch, as the grid drivers do
    for (uint64_t seed = 1000; seed < 1100; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        GablesEvaluator ev(p.soc(), p.usecase());
        const size_t n = p.ips.size();

        for (int step = 0; step < 40; ++step) {
            // Apply one random mutation to both the evaluator and the
            // mirror, then compare against a from-scratch rebuild.
            switch (rng.uniformInt(0, 5)) {
              case 0: {
                p.ppeak = rng.logUniform(1e9, 1e12);
                ev.setPpeak(p.ppeak);
                break;
              }
              case 1: {
                p.bpeak = rng.logUniform(1e9, 1e11);
                ev.setBpeak(p.bpeak);
                break;
              }
              case 2: {
                if (n == 1)
                    continue;
                size_t i = static_cast<size_t>(
                    rng.uniformInt(1, static_cast<int64_t>(n) - 1));
                p.ips[i].acceleration = rng.logUniform(0.1, 100.0);
                ev.setAcceleration(i, p.ips[i].acceleration);
                break;
              }
              case 3: {
                size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(n) - 1));
                p.ips[i].bandwidth = rng.logUniform(1e8, 1e11);
                ev.setIpBandwidth(i, p.ips[i].bandwidth);
                break;
              }
              case 4: {
                size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(n) - 1));
                if (p.work[i].fraction == 0.0)
                    continue;
                p.work[i].intensity =
                    rng.uniformInt(0, 5) == 0
                        ? kInf
                        : rng.logUniform(0.01, 1000.0);
                ev.setIntensity(i, p.work[i].intensity);
                break;
              }
              default: {
                // Move half of lane i's work to lane j; the two-term
                // transfer keeps the fraction sum unchanged modulo
                // rounding the Usecase tolerance absorbs, and both
                // paths see the exact same post-move doubles.
                if (n == 1)
                    continue;
                size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(n) - 1));
                size_t j = (i + 1) % n;
                double moved = p.work[i].fraction * 0.5;
                p.work[i].fraction -= moved;
                p.work[j].fraction += moved;
                if (p.work[j].fraction > 0.0 &&
                    !(p.work[j].intensity > 0.0))
                    p.work[j].intensity = 1.0;
                ev.setWork(i, p.work[i].fraction, p.work[i].intensity);
                ev.setWork(j, p.work[j].fraction, p.work[j].intensity);
                break;
              }
            }
            GablesResult legacy =
                GablesModel::evaluate(p.soc(), p.usecase());
            ev.evaluate(fast);
            expectBitIdentical(fast, legacy, seed, step);
            EXPECT_EQ(bits(ev.attainable()), bits(legacy.attainable))
                << "seed " << seed << " step " << step;
        }
    }
}

/** Bottleneck attribution of a scalar evaluator via the full
 * evaluate() path, for comparison with GablesEvalPack. */
int
scalarBottleneck(GablesEvaluator &ev, GablesResult &scratch)
{
    ev.evaluate(scratch);
    return scratch.bottleneckIp;
}

TEST(EvaluatorProperty, PackMatchesScalarRandomMutations)
{
    constexpr size_t W = GablesEvalPack::kWidth;
    GablesResult scratch;
    for (uint64_t seed = 2000; seed < 2060; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        GablesEvaluator base(p.soc(), p.usecase());
        const size_t n = p.ips.size();

        GablesEvalPack pack(base);
        // One scalar mirror per lane; GablesEvaluator is copyable.
        std::vector<GablesEvaluator> mirror(W, base);

        for (int round = 0; round < 6; ++round) {
            // A few random mutations per lane, applied identically
            // to the pack lane and its scalar mirror. Lane 0's IP 0
            // fraction stays positive so every lane keeps nonzero
            // critical time.
            for (size_t w = 0; w < W; ++w) {
                int muts = static_cast<int>(rng.uniformInt(0, 3));
                for (int m = 0; m < muts; ++m) {
                    switch (rng.uniformInt(0, 5)) {
                      case 0: {
                        double v = rng.logUniform(1e9, 1e12);
                        pack.setPpeak(w, v);
                        mirror[w].setPpeak(v);
                        break;
                      }
                      case 1: {
                        double v = rng.logUniform(1e9, 1e11);
                        pack.setBpeak(w, v);
                        mirror[w].setBpeak(v);
                        break;
                      }
                      case 2: {
                        if (n == 1)
                            continue;
                        size_t i = static_cast<size_t>(rng.uniformInt(
                            1, static_cast<int64_t>(n) - 1));
                        double v = rng.logUniform(0.1, 100.0);
                        pack.setAcceleration(w, i, v);
                        mirror[w].setAcceleration(i, v);
                        break;
                      }
                      case 3: {
                        size_t i = static_cast<size_t>(rng.uniformInt(
                            0, static_cast<int64_t>(n) - 1));
                        double v = rng.logUniform(1e8, 1e11);
                        pack.setIpBandwidth(w, i, v);
                        mirror[w].setIpBandwidth(i, v);
                        break;
                      }
                      case 4: {
                        size_t i = static_cast<size_t>(rng.uniformInt(
                            0, static_cast<int64_t>(n) - 1));
                        double in = rng.uniformInt(0, 5) == 0
                                        ? kInf
                                        : rng.logUniform(0.01, 1000.0);
                        // Idle only the tail IPs so lane time stays
                        // positive (IP 0 keeps its work).
                        double f = i > 0 && rng.uniformInt(0, 3) == 0
                                       ? 0.0
                                       : rng.logUniform(0.01, 1.0);
                        pack.setWork(w, i, f, in);
                        mirror[w].setWork(i, f, in);
                        break;
                      }
                      default: {
                        size_t i = static_cast<size_t>(rng.uniformInt(
                            0, static_cast<int64_t>(n) - 1));
                        if (mirror[w].fraction(i) == 0.0)
                            continue;
                        double in = rng.uniformInt(0, 5) == 0
                                        ? kInf
                                        : rng.logUniform(0.01, 1000.0);
                        pack.setIntensity(w, i, in);
                        mirror[w].setIntensity(i, in);
                        break;
                      }
                    }
                }
            }
            pack.run(W);
            for (size_t w = 0; w < W; ++w) {
                EXPECT_EQ(bits(pack.attainable(w)),
                          bits(mirror[w].attainable()))
                    << "seed " << seed << " round " << round
                    << " lane " << w;
                EXPECT_EQ(pack.bottleneckIp(w),
                          scalarBottleneck(mirror[w], scratch))
                    << "seed " << seed << " round " << round
                    << " lane " << w;
            }
        }
    }
}

TEST(EvaluatorProperty, PackDegenerateLanesMatchScalar)
{
    constexpr size_t W = GablesEvalPack::kWidth;
    // A 4-IP pair with work spread across all IPs.
    Pair p;
    p.ppeak = 1e11;
    p.bpeak = 2e10;
    for (size_t i = 0; i < 4; ++i) {
        IpSpec ip;
        ip.name = "ip" + std::to_string(i);
        ip.acceleration = i == 0 ? 1.0 : static_cast<double>(i) * 4.0;
        ip.bandwidth = 5e9 * static_cast<double>(i + 1);
        p.ips.push_back(ip);
        IpWork w;
        w.fraction = 0.25;
        w.intensity = 2.0 * static_cast<double>(i + 1);
        p.work.push_back(w);
    }
    GablesEvaluator base(p.soc(), p.usecase());
    GablesEvalPack pack(base);
    std::vector<GablesEvaluator> mirror(W, base);
    GablesResult scratch;

    // The constructors reject a literal zero bandwidth on both paths,
    // so the closest reachable degenerate is the smallest positive
    // denormal — its transfer time overflows to inf identically in
    // both paths.
    const double kTinyBw = std::numeric_limits<double>::denorm_min();

    auto mutate = [&](size_t lane, auto &&fn) { fn(lane); };
    // Lane 0: pure compute — every IP at infinite intensity.
    mutate(0, [&](size_t w) {
        for (size_t i = 0; i < 4; ++i) {
            pack.setIntensity(w, i, kInf);
            mirror[w].setIntensity(i, kInf);
        }
    });
    // Lane 1: idle tail IPs (fi = 0), mass moved to IP 0.
    mutate(1, [&](size_t w) {
        pack.setFraction(w, 0, 1.0);
        mirror[w].setFraction(0, 1.0);
        for (size_t i = 1; i < 4; ++i) {
            pack.setFraction(w, i, 0.0);
            mirror[w].setFraction(i, 0.0);
        }
    });
    // Lane 2: denormal-small link bandwidth (transfer time -> inf).
    mutate(2, [&](size_t w) {
        pack.setIpBandwidth(w, 2, kTinyBw);
        mirror[w].setIpBandwidth(2, kTinyBw);
    });
    // Lane 3: all three degeneracies mixed in one lane.
    mutate(3, [&](size_t w) {
        pack.setWork(w, 1, 0.0, 1.0);
        mirror[w].setWork(1, 0.0, 1.0);
        pack.setIntensity(w, 3, kInf);
        mirror[w].setIntensity(3, kInf);
        pack.setIpBandwidth(w, 0, kTinyBw);
        mirror[w].setIpBandwidth(0, kTinyBw);
    });
    // Lane 4: idle IP whose leftover intensity is *invalid for work*
    // (zero) — legal while idle; the packed select must still pin its
    // dataBytes to +0 like the scalar branch.
    if (W > 4) {
        pack.setWork(4, 3, 0.0, 0.0);
        mirror[4].setWork(3, 0.0, 0.0);
        pack.setFraction(4, 0, 0.5);
        mirror[4].setFraction(0, 0.5);
    }
    // Remaining lanes stay broadcast copies of the base.

    pack.run(W);
    for (size_t w = 0; w < W; ++w) {
        EXPECT_EQ(bits(pack.attainable(w)),
                  bits(mirror[w].attainable()))
            << "lane " << w;
        EXPECT_EQ(pack.bottleneckIp(w),
                  scalarBottleneck(mirror[w], scratch))
            << "lane " << w;
    }

    // Mutators reject invalid values with the scalar path's checks.
    EXPECT_THROW(pack.setFraction(0, 1, -0.5), FatalError);
    EXPECT_THROW(pack.setIpBandwidth(0, 1, 0.0), FatalError);
    EXPECT_THROW(pack.setWork(0, 1, 0.5, 0.0), FatalError);
    EXPECT_THROW(pack.setAcceleration(0, 0, 2.0), FatalError);
}

TEST(EvaluatorProperty, PackBulkRowsMatchPerLaneMutators)
{
    constexpr size_t W = GablesEvalPack::kWidth;
    for (uint64_t seed = 3000; seed < 3040; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        GablesEvaluator base(p.soc(), p.usecase());
        const size_t n = p.ips.size();

        // Two packs fed the same values: one through the bulk row
        // setters (the sweep drivers' staging path), one through the
        // per-lane mutators already proven against the scalar path.
        GablesEvalPack bulk(base);
        GablesEvalPack lane(base);

        for (int round = 0; round < 8; ++round) {
            // Partial-count staging exercises the grid-tail case.
            const size_t cnt =
                static_cast<size_t>(rng.uniformInt(1, W));
            double vals[W];
            switch (rng.uniformInt(0, 4)) {
              case 0: {
                for (size_t w = 0; w < cnt; ++w)
                    vals[w] = rng.uniform(0.0, 1.0);
                size_t i = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int64_t>(n) - 1));
                // Keep the work-needs-intensity invariant: staging a
                // positive fraction over a lane whose leftover
                // intensity is invalid must throw identically, so
                // give every lane a valid intensity first.
                for (size_t w = 0; w < W; ++w) {
                    bulk.setIntensity(w, i, 2.0);
                    lane.setIntensity(w, i, 2.0);
                }
                bulk.setFractionRow(i, vals, cnt);
                for (size_t w = 0; w < cnt; ++w)
                    lane.setFraction(w, i, vals[w]);
                break;
              }
              case 1: {
                for (size_t w = 0; w < cnt; ++w)
                    vals[w] = rng.uniformInt(0, 5) == 0
                                  ? kInf
                                  : rng.logUniform(0.01, 1000.0);
                size_t i = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int64_t>(n) - 1));
                bulk.setIntensityRow(i, vals, cnt);
                for (size_t w = 0; w < cnt; ++w)
                    lane.setIntensity(w, i, vals[w]);
                break;
              }
              case 2: {
                if (n == 1)
                    continue;
                for (size_t w = 0; w < cnt; ++w)
                    vals[w] = rng.logUniform(0.1, 100.0);
                size_t i = static_cast<size_t>(rng.uniformInt(
                    1, static_cast<int64_t>(n) - 1));
                bulk.setAccelerationRow(i, vals, cnt);
                for (size_t w = 0; w < cnt; ++w)
                    lane.setAcceleration(w, i, vals[w]);
                break;
              }
              case 3: {
                for (size_t w = 0; w < cnt; ++w)
                    vals[w] = rng.logUniform(1e8, 1e11);
                size_t i = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int64_t>(n) - 1));
                bulk.setIpBandwidthRow(i, vals, cnt);
                for (size_t w = 0; w < cnt; ++w)
                    lane.setIpBandwidth(w, i, vals[w]);
                break;
              }
              default: {
                for (size_t w = 0; w < cnt; ++w)
                    vals[w] = rng.logUniform(1e9, 1e11);
                bulk.setBpeakLanes(vals, cnt);
                for (size_t w = 0; w < cnt; ++w)
                    lane.setBpeak(w, vals[w]);
                break;
              }
            }
            bulk.run(W);
            lane.run(W);
            for (size_t w = 0; w < W; ++w) {
                EXPECT_EQ(bits(bulk.attainable(w)),
                          bits(lane.attainable(w)))
                    << "seed " << seed << " round " << round
                    << " lane " << w;
                EXPECT_EQ(bulk.bottleneckIp(w), lane.bottleneckIp(w))
                    << "seed " << seed << " round " << round
                    << " lane " << w;
            }
        }
    }
}

TEST(EvaluatorProperty, PackBulkRowsValidateLikePerLane)
{
    Rng rng(42);
    Pair p = randomPair(rng);
    // Guarantee IP 0 carries work so intensity validation can fire.
    p.work[0].fraction = std::max(p.work[0].fraction, 0.5);
    p.work[0].intensity = 2.0;
    GablesEvaluator base(p.soc(), p.usecase());
    GablesEvalPack pack(base);
    constexpr size_t W = GablesEvalPack::kWidth;

    double bad_frac[W];
    double bad_pos[W];
    for (size_t w = 0; w < W; ++w) {
        bad_frac[w] = 0.25;
        bad_pos[w] = 1.0;
    }
    bad_frac[W - 1] = -0.5;
    bad_pos[W - 1] = 0.0;
    EXPECT_THROW(pack.setFractionRow(0, bad_frac, W), FatalError);
    EXPECT_THROW(pack.setIntensityRow(0, bad_pos, W), FatalError);
    EXPECT_THROW(pack.setIpBandwidthRow(0, bad_pos, W), FatalError);
    EXPECT_THROW(pack.setBpeakLanes(bad_pos, W), FatalError);
    if (p.ips.size() > 1) {
        EXPECT_THROW(pack.setAccelerationRow(1, bad_pos, W),
                     FatalError);
    }
    // A0 must stay 1 through the bulk path too.
    double two[W];
    for (size_t w = 0; w < W; ++w)
        two[w] = 2.0;
    EXPECT_THROW(pack.setAccelerationRow(0, two, W), FatalError);
    // Count past the pack width is rejected, not clamped.
    EXPECT_THROW(pack.setBpeakLanes(two, W + 1), FatalError);
}

TEST(EvaluatorProperty, PackParamSumsMatchCostModelOrder)
{
    for (uint64_t seed = 4000; seed < 4010; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        GablesEvaluator base(p.soc(), p.usecase());
        GablesEvalPack pack(base);
        constexpr size_t W = GablesEvalPack::kWidth;
        const size_t n = p.ips.size();

        // Give every lane its own hardware point.
        std::vector<std::vector<IpSpec>> perLane(W, p.ips);
        for (size_t w = 0; w < W; ++w) {
            for (size_t i = 0; i < n; ++i) {
                double b = rng.logUniform(1e8, 1e11);
                pack.setIpBandwidth(w, i, b);
                perLane[w][i].bandwidth = b;
                if (i > 0) {
                    double a = rng.logUniform(0.1, 100.0);
                    pack.setAcceleration(w, i, a);
                    perLane[w][i].acceleration = a;
                }
            }
        }

        double sum_a[W];
        double sum_b[W];
        pack.paramSums(sum_a, sum_b);
        for (size_t w = 0; w < W; ++w) {
            // The scalar accumulation order of CostModel::cost().
            double accel = 0.0;
            double ip_bw = 0.0;
            for (const IpSpec &ip : perLane[w]) {
                accel += ip.acceleration;
                ip_bw += ip.bandwidth;
            }
            EXPECT_EQ(bits(sum_a[w]), bits(accel))
                << "seed " << seed << " lane " << w;
            EXPECT_EQ(bits(sum_b[w]), bits(ip_bw))
                << "seed " << seed << " lane " << w;
        }
    }
}

TEST(EvaluatorProperty, PackCachedReductionsSurviveBpeakOnlyRuns)
{
    Rng rng(11);
    Pair p = randomPair(rng);
    GablesEvaluator base(p.soc(), p.usecase());
    GablesEvalPack pack(base);
    std::vector<GablesEvaluator> mirror(GablesEvalPack::kWidth, base);
    constexpr size_t W = GablesEvalPack::kWidth;

    // Alternate row-dirtying rounds with Bpeak-only rounds (which
    // leave every row clean and must reuse the cached reductions).
    for (int round = 0; round < 10; ++round) {
        if (round % 2 == 0) {
            for (size_t w = 0; w < W; ++w) {
                double b = rng.logUniform(1e9, 1e11);
                pack.setBpeak(w, b);
                mirror[w].setBpeak(b);
            }
        } else {
            for (size_t w = 0; w < W; ++w) {
                double in = rng.logUniform(0.01, 1000.0);
                pack.setIntensity(w, 0, in);
                mirror[w].setIntensity(0, in);
            }
        }
        pack.run(W);
        for (size_t w = 0; w < W; ++w)
            EXPECT_EQ(bits(pack.attainable(w)),
                      bits(mirror[w].attainable()))
                << "round " << round << " lane " << w;
    }
}

TEST(EvaluatorProperty, PackBroadcastPreservesEvalCount)
{
    Rng rng(7);
    Pair p = randomPair(rng);
    GablesEvaluator base(p.soc(), p.usecase());
    GablesEvalPack pack(base);
    pack.run(3);
    EXPECT_EQ(pack.evalCount(), 3u);
    pack.broadcast(base);
    pack.run(GablesEvalPack::kWidth);
    EXPECT_EQ(pack.evalCount(), 3u + GablesEvalPack::kWidth);
}

} // namespace
} // namespace gables
