/**
 * @file
 * Property tests for GablesEvaluator: over randomized SoCs, usecases,
 * and mutation sequences, the compiled evaluator must stay
 * bit-identical to a from-scratch GablesModel::evaluate() of the
 * equivalent (SocSpec, Usecase) pair — including idle (fi == 0) lanes
 * and infinite-intensity (no-traffic) lanes.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/evaluator.h"
#include "core/gables.h"
#include "util/rng.h"

namespace gables {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t
bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** Mutable mirror of a (SocSpec, Usecase) pair that can be rebuilt
 * from scratch for the legacy path after every mutation. */
struct Pair {
    double ppeak = 0.0;
    double bpeak = 0.0;
    std::vector<IpSpec> ips;
    std::vector<IpWork> work;

    SocSpec soc() const { return SocSpec("fuzz", ppeak, bpeak, ips); }
    Usecase usecase() const { return Usecase("fuzz", work); }
};

Pair
randomPair(Rng &rng)
{
    Pair p;
    size_t n = static_cast<size_t>(rng.uniformInt(1, 8));
    p.ppeak = rng.logUniform(1e9, 1e12);
    p.bpeak = rng.logUniform(1e9, 1e11);
    p.ips.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        IpSpec ip;
        ip.name = "ip" + std::to_string(i);
        ip.acceleration = i == 0 ? 1.0 : rng.logUniform(0.1, 100.0);
        ip.bandwidth = rng.logUniform(1e8, 1e11);
        p.ips.push_back(ip);
    }
    std::vector<double> f = rng.simplex(n);
    p.work.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        IpWork w;
        w.fraction = f[i];
        // ~1 in 6 active lanes is pure compute (infinite intensity);
        // intensities otherwise span five orders of magnitude.
        w.intensity = rng.uniformInt(0, 5) == 0
                          ? kInf
                          : rng.logUniform(0.01, 1000.0);
        p.work.push_back(w);
    }
    // Idle roughly a third of the lanes (but never all of them),
    // handing their mass to the first surviving lane so the fractions
    // still sum to the simplex total bit-for-bit.
    for (size_t i = n; i-- > 1;) {
        if (rng.uniformInt(0, 2) == 0 && p.work[i].fraction > 0.0) {
            double moved = p.work[i].fraction;
            p.work[i].fraction = 0.0;
            p.work[i].intensity = 1.0;
            p.work[0].fraction += moved;
        }
    }
    return p;
}

void
expectBitIdentical(const GablesResult &a, const GablesResult &b,
                   uint64_t seed, int step)
{
    ASSERT_EQ(a.ips.size(), b.ips.size());
    EXPECT_EQ(bits(a.attainable), bits(b.attainable))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.memoryTime), bits(b.memoryTime))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.memoryPerfBound), bits(b.memoryPerfBound))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.averageIntensity), bits(b.averageIntensity))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(bits(a.totalDataBytes), bits(b.totalDataBytes))
        << "seed " << seed << " step " << step;
    EXPECT_EQ(a.bottleneckIp, b.bottleneckIp)
        << "seed " << seed << " step " << step;
    EXPECT_EQ(a.bottleneck, b.bottleneck)
        << "seed " << seed << " step " << step;
    for (size_t i = 0; i < a.ips.size(); ++i) {
        EXPECT_EQ(bits(a.ips[i].computeTime), bits(b.ips[i].computeTime))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].dataBytes), bits(b.ips[i].dataBytes))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].transferTime),
                  bits(b.ips[i].transferTime))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].time), bits(b.ips[i].time))
            << "seed " << seed << " step " << step << " ip " << i;
        EXPECT_EQ(bits(a.ips[i].perfBound), bits(b.ips[i].perfBound))
            << "seed " << seed << " step " << step << " ip " << i;
    }
}

TEST(EvaluatorProperty, FreshCompileMatchesLegacy)
{
    for (uint64_t seed = 0; seed < 400; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        SocSpec soc = p.soc();
        Usecase u = p.usecase();
        GablesEvaluator ev(soc, u);
        GablesResult legacy = GablesModel::evaluate(soc, u);
        GablesResult fast;
        ev.evaluate(fast);
        expectBitIdentical(fast, legacy, seed, -1);
        EXPECT_EQ(bits(ev.attainable()), bits(legacy.attainable))
            << "seed " << seed;
    }
}

TEST(EvaluatorProperty, MutationSequencesMatchRebuild)
{
    GablesResult fast; // reused scratch, as the grid drivers do
    for (uint64_t seed = 1000; seed < 1100; ++seed) {
        Rng rng(seed);
        Pair p = randomPair(rng);
        GablesEvaluator ev(p.soc(), p.usecase());
        const size_t n = p.ips.size();

        for (int step = 0; step < 40; ++step) {
            // Apply one random mutation to both the evaluator and the
            // mirror, then compare against a from-scratch rebuild.
            switch (rng.uniformInt(0, 5)) {
              case 0: {
                p.ppeak = rng.logUniform(1e9, 1e12);
                ev.setPpeak(p.ppeak);
                break;
              }
              case 1: {
                p.bpeak = rng.logUniform(1e9, 1e11);
                ev.setBpeak(p.bpeak);
                break;
              }
              case 2: {
                if (n == 1)
                    continue;
                size_t i = static_cast<size_t>(
                    rng.uniformInt(1, static_cast<int64_t>(n) - 1));
                p.ips[i].acceleration = rng.logUniform(0.1, 100.0);
                ev.setAcceleration(i, p.ips[i].acceleration);
                break;
              }
              case 3: {
                size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(n) - 1));
                p.ips[i].bandwidth = rng.logUniform(1e8, 1e11);
                ev.setIpBandwidth(i, p.ips[i].bandwidth);
                break;
              }
              case 4: {
                size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(n) - 1));
                if (p.work[i].fraction == 0.0)
                    continue;
                p.work[i].intensity =
                    rng.uniformInt(0, 5) == 0
                        ? kInf
                        : rng.logUniform(0.01, 1000.0);
                ev.setIntensity(i, p.work[i].intensity);
                break;
              }
              default: {
                // Move half of lane i's work to lane j; the two-term
                // transfer keeps the fraction sum unchanged modulo
                // rounding the Usecase tolerance absorbs, and both
                // paths see the exact same post-move doubles.
                if (n == 1)
                    continue;
                size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(n) - 1));
                size_t j = (i + 1) % n;
                double moved = p.work[i].fraction * 0.5;
                p.work[i].fraction -= moved;
                p.work[j].fraction += moved;
                if (p.work[j].fraction > 0.0 &&
                    !(p.work[j].intensity > 0.0))
                    p.work[j].intensity = 1.0;
                ev.setWork(i, p.work[i].fraction, p.work[i].intensity);
                ev.setWork(j, p.work[j].fraction, p.work[j].intensity);
                break;
              }
            }
            GablesResult legacy =
                GablesModel::evaluate(p.soc(), p.usecase());
            ev.evaluate(fast);
            expectBitIdentical(fast, legacy, seed, step);
            EXPECT_EQ(bits(ev.attainable()), bits(legacy.attainable))
                << "seed " << seed << " step " << step;
        }
    }
}

} // namespace
} // namespace gables
