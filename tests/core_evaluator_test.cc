/**
 * @file
 * Unit tests for the compiled GablesEvaluator: bit-identity with the
 * legacy GablesModel::evaluate() path, the attainable() fast path,
 * every single-parameter mutator against a from-scratch rebuild,
 * input validation, inactive and infinite-intensity lanes, and the
 * evalCount telemetry hook.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/evaluator.h"
#include "core/gables.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t
bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** Assert every field of two results matches bit-for-bit. */
void
expectBitIdentical(const GablesResult &a, const GablesResult &b)
{
    EXPECT_EQ(bits(a.attainable), bits(b.attainable));
    EXPECT_EQ(bits(a.memoryTime), bits(b.memoryTime));
    EXPECT_EQ(bits(a.memoryPerfBound), bits(b.memoryPerfBound));
    EXPECT_EQ(bits(a.averageIntensity), bits(b.averageIntensity));
    EXPECT_EQ(bits(a.totalDataBytes), bits(b.totalDataBytes));
    EXPECT_EQ(a.bottleneckIp, b.bottleneckIp);
    EXPECT_EQ(a.bottleneck, b.bottleneck);
    ASSERT_EQ(a.ips.size(), b.ips.size());
    for (size_t i = 0; i < a.ips.size(); ++i) {
        EXPECT_EQ(bits(a.ips[i].computeTime), bits(b.ips[i].computeTime))
            << "ip " << i;
        EXPECT_EQ(bits(a.ips[i].dataBytes), bits(b.ips[i].dataBytes))
            << "ip " << i;
        EXPECT_EQ(bits(a.ips[i].transferTime),
                  bits(b.ips[i].transferTime))
            << "ip " << i;
        EXPECT_EQ(bits(a.ips[i].time), bits(b.ips[i].time)) << "ip "
                                                            << i;
        EXPECT_EQ(bits(a.ips[i].perfBound), bits(b.ips[i].perfBound))
            << "ip " << i;
    }
}

SocSpec
threeIp()
{
    return SocSpec("three", 10e9, 20e9,
                   {IpSpec{"CPU", 1.0, 8e9}, IpSpec{"GPU", 20.0, 25e9},
                    IpSpec{"DSP", 0.5, 5e9}});
}

TEST(Evaluator, MatchesLegacyOnCatalogSocs)
{
    struct Case {
        SocSpec soc;
        Usecase usecase;
    };
    std::vector<IpWork> even(kNumFullSocIps, IpWork{0.1, 2.0});
    Case cases[] = {
        {SocCatalog::paperTwoIp(), Usecase::twoIp("6b", 0.75, 8.0, 0.1)},
        {SocCatalog::paperTwoIp(), Usecase::twoIp("6a", 0.0, 8.0, 0.1)},
        {SocCatalog::snapdragon835(),
         Usecase("mix", {IpWork{0.5, 4.0}, IpWork{0.3, 16.0},
                         IpWork{0.2, 1.0}})},
        {SocCatalog::snapdragon821(),
         Usecase("gpu", {IpWork{0.0, 1.0}, IpWork{1.0, 0.25},
                         IpWork{0.0, 1.0}})},
        {SocCatalog::snapdragon835Full(), Usecase("even", even)},
    };
    for (const Case &c : cases) {
        GablesEvaluator ev(c.soc, c.usecase);
        GablesResult fast = ev.evaluate();
        GablesResult legacy = GablesModel::evaluate(c.soc, c.usecase);
        expectBitIdentical(fast, legacy);
        EXPECT_EQ(bits(ev.attainable()), bits(legacy.attainable));
    }
}

TEST(Evaluator, ScratchResultReuseIsIdentical)
{
    SocSpec soc = threeIp();
    Usecase a("a", {IpWork{0.5, 4.0}, IpWork{0.25, 16.0},
                    IpWork{0.25, 1.0}});
    Usecase b("b", {IpWork{0.1, 0.5}, IpWork{0.9, 64.0},
                    IpWork{0.0, 1.0}});
    GablesEvaluator ev(soc, a);
    GablesResult scratch;
    ev.evaluate(scratch);
    expectBitIdentical(scratch, GablesModel::evaluate(soc, a));

    // Mutate to usecase b in place; the reused scratch must carry no
    // stale state.
    for (size_t i = 0; i < soc.numIps(); ++i)
        ev.setWork(i, b.fraction(i), b.intensity(i));
    ev.evaluate(scratch);
    expectBitIdentical(scratch, GablesModel::evaluate(soc, b));
}

TEST(Evaluator, EachMutatorMatchesRebuild)
{
    SocSpec soc = threeIp();
    Usecase u("u", {IpWork{0.5, 4.0}, IpWork{0.3, 16.0},
                    IpWork{0.2, 1.0}});
    GablesEvaluator ev(soc, u);

    ev.setPpeak(17e9);
    expectBitIdentical(
        ev.evaluate(),
        GablesModel::evaluate(SocSpec("s", 17e9, soc.bpeak(),
                                      {soc.ip(0), soc.ip(1),
                                       soc.ip(2)}),
                              u));
    ev.setPpeak(soc.ppeak());

    ev.setBpeak(7e9);
    expectBitIdentical(ev.evaluate(),
                       GablesModel::evaluate(soc.withBpeak(7e9), u));
    ev.setBpeak(soc.bpeak());

    ev.setAcceleration(1, 3.5);
    expectBitIdentical(
        ev.evaluate(),
        GablesModel::evaluate(soc.withIpAcceleration(1, 3.5), u));
    ev.setAcceleration(1, soc.ip(1).acceleration);

    ev.setIpBandwidth(2, 11e9);
    expectBitIdentical(
        ev.evaluate(),
        GablesModel::evaluate(soc.withIpBandwidth(2, 11e9), u));
    ev.setIpBandwidth(2, soc.ip(2).bandwidth);

    ev.setIntensity(0, 0.125);
    expectBitIdentical(
        ev.evaluate(),
        GablesModel::evaluate(soc,
                              u.withWork(0, IpWork{0.5, 0.125})));
    ev.setIntensity(0, u.intensity(0));

    ev.setFraction(1, 0.2);
    ev.setFraction(2, 0.3);
    expectBitIdentical(
        ev.evaluate(),
        GablesModel::evaluate(
            soc, Usecase("v", {IpWork{0.5, 4.0}, IpWork{0.2, 16.0},
                               IpWork{0.3, 1.0}})));

    // After the full mutate-and-restore tour the original point must
    // reproduce exactly.
    ev.setFraction(1, 0.3);
    ev.setFraction(2, 0.2);
    expectBitIdentical(ev.evaluate(), GablesModel::evaluate(soc, u));
}

TEST(Evaluator, InactiveAndInfiniteLanes)
{
    SocSpec soc = threeIp();
    Usecase u("edge", {IpWork{0.0, 1.0}, IpWork{0.5, kInf},
                       IpWork{0.5, 2.0}});
    GablesEvaluator ev(soc, u);
    GablesResult legacy = GablesModel::evaluate(soc, u);
    expectBitIdentical(ev.evaluate(), legacy);
    EXPECT_TRUE(std::isinf(ev.evaluate().ips[0].perfBound));

    // Activating the idle lane and idling an active one through the
    // mutators still matches a rebuild.
    ev.setWork(0, 0.5, 3.0);
    ev.setWork(1, 0.0, 1.0);
    expectBitIdentical(
        ev.evaluate(),
        GablesModel::evaluate(
            soc, Usecase("e2", {IpWork{0.5, 3.0}, IpWork{0.0, 1.0},
                                IpWork{0.5, 2.0}})));
}

TEST(Evaluator, InvalidInputsRejected)
{
    SocSpec soc = threeIp();
    Usecase u("u", {IpWork{0.5, 4.0}, IpWork{0.3, 16.0},
                    IpWork{0.2, 1.0}});
    Usecase two = Usecase::twoIp("two", 0.5, 1.0, 1.0);
    EXPECT_THROW(GablesEvaluator(soc, two), FatalError);

    GablesEvaluator ev(soc, u);
    EXPECT_THROW(ev.setPpeak(0.0), FatalError);
    EXPECT_THROW(ev.setPpeak(-1.0), FatalError);
    EXPECT_THROW(ev.setBpeak(kInf), FatalError);
    EXPECT_THROW(ev.setAcceleration(0, 2.0), FatalError); // A0 pinned
    EXPECT_THROW(ev.setAcceleration(1, 0.0), FatalError);
    EXPECT_THROW(ev.setAcceleration(7, 2.0), FatalError);
    EXPECT_THROW(ev.setIpBandwidth(1, -3.0), FatalError);
    EXPECT_THROW(ev.setFraction(2, -0.1), FatalError);
    EXPECT_THROW(ev.setIntensity(2, 0.0), FatalError);
    EXPECT_THROW(ev.setWork(9, 0.5, 1.0), FatalError);

    // A rejected mutation must leave the compiled state untouched.
    expectBitIdentical(ev.evaluate(), GablesModel::evaluate(soc, u));
}

TEST(Evaluator, GettersReflectMutations)
{
    SocSpec soc = threeIp();
    Usecase u("u", {IpWork{0.5, 4.0}, IpWork{0.3, 16.0},
                    IpWork{0.2, 1.0}});
    GablesEvaluator ev(soc, u);
    EXPECT_EQ(ev.numIps(), 3u);
    EXPECT_DOUBLE_EQ(ev.ppeak(), 10e9);
    EXPECT_DOUBLE_EQ(ev.bpeak(), 20e9);
    EXPECT_DOUBLE_EQ(ev.acceleration(1), 20.0);
    EXPECT_DOUBLE_EQ(ev.ipBandwidth(2), 5e9);
    EXPECT_DOUBLE_EQ(ev.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(ev.intensity(1), 16.0);
    ev.setBpeak(9e9);
    ev.setWork(0, 0.4, 2.0);
    EXPECT_DOUBLE_EQ(ev.bpeak(), 9e9);
    EXPECT_DOUBLE_EQ(ev.fraction(0), 0.4);
    EXPECT_DOUBLE_EQ(ev.intensity(0), 2.0);
}

TEST(Evaluator, EvalCountCountsBothPaths)
{
    SocSpec soc = threeIp();
    Usecase u("u", {IpWork{0.5, 4.0}, IpWork{0.3, 16.0},
                    IpWork{0.2, 1.0}});
    GablesEvaluator ev(soc, u);
    EXPECT_EQ(ev.evalCount(), 0u);
    ev.attainable();
    EXPECT_EQ(ev.evalCount(), 1u);
    GablesResult scratch;
    ev.evaluate(scratch);
    ev.evaluate();
    EXPECT_EQ(ev.evalCount(), 3u);
    ev.setBpeak(9e9); // mutation alone is not an evaluation
    EXPECT_EQ(ev.evalCount(), 3u);
}

} // namespace
} // namespace gables
