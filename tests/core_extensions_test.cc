/**
 * @file
 * Unit and property tests for the three paper extensions (memory-
 * side memory, interconnect topology, serialized work) and the
 * phased composition layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/gables.h"
#include "core/interconnect.h"
#include "core/memside.h"
#include "core/phased.h"
#include "core/serialized.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

// ---------------------------------------------------------------
// Memory-side memory (paper Section V-A, Eq. 15)
// ---------------------------------------------------------------

TEST(MemSide, AllMissesReducesToBase)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    GablesResult base = GablesModel::evaluate(soc, u);
    GablesResult ext =
        MemSideMemory::uniform(2, 1.0).evaluate(soc, u);
    EXPECT_DOUBLE_EQ(ext.attainable, base.attainable);
    EXPECT_DOUBLE_EQ(ext.memoryTime, base.memoryTime);
    EXPECT_EQ(ext.bottleneckIp, base.bottleneckIp);
}

TEST(MemSide, PerfectReuseRemovesMemoryBound)
{
    // Figure 6b is memory bound at 1.33 Gops/s; with a perfect
    // memory-side cache the bound moves to IP[1]'s link (2 Gops/s).
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    GablesResult ext =
        MemSideMemory::uniform(2, 0.0).evaluate(soc, u);
    EXPECT_DOUBLE_EQ(ext.attainable, 2e9);
    EXPECT_EQ(ext.bottleneckIp, 1);
    EXPECT_EQ(ext.bottleneck, BottleneckKind::IpBandwidth);
    EXPECT_DOUBLE_EQ(ext.memoryTime, 0.0);
}

TEST(MemSide, Eq15Arithmetic)
{
    // Halving off-chip traffic doubles the memory bound exactly.
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    GablesResult base = GablesModel::evaluate(soc, u);
    GablesResult half =
        MemSideMemory::uniform(2, 0.5).evaluate(soc, u);
    EXPECT_NEAR(half.memoryPerfBound, 2.0 * base.memoryPerfBound,
                1.0);
    EXPECT_DOUBLE_EQ(half.totalDataBytes, 0.5 * base.totalDataBytes);
}

TEST(MemSide, PerIpRatios)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    // Only IP[1]'s traffic is filtered.
    MemSideMemory ext({1.0, 0.1});
    GablesResult r = ext.evaluate(soc, u);
    GablesResult base = GablesModel::evaluate(soc, u);
    double expected = base.ips[0].dataBytes +
                      0.1 * base.ips[1].dataBytes;
    EXPECT_NEAR(r.totalDataBytes, expected, 1e-15);
}

TEST(MemSide, MonotoneInMissRatio)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    double prev = 0.0;
    for (double m : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        double perf =
            MemSideMemory::uniform(2, m).evaluate(soc, u).attainable;
        if (m > 0.0) {
            EXPECT_LE(perf, prev * (1.0 + 1e-12));
        }
        prev = perf;
    }
}

TEST(MemSide, InvalidInputsRejected)
{
    EXPECT_THROW(MemSideMemory({-0.1}), FatalError);
    EXPECT_THROW(MemSideMemory({1.5}), FatalError);
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(MemSideMemory::uniform(3, 0.5).evaluate(soc, u),
                 FatalError);
}

TEST(MemSide, FractionalFitMissRatio)
{
    EXPECT_DOUBLE_EQ(fractionalFitMissRatio(100.0, 100.0), 0.0);
    EXPECT_DOUBLE_EQ(fractionalFitMissRatio(100.0, 200.0), 0.0);
    EXPECT_DOUBLE_EQ(fractionalFitMissRatio(100.0, 25.0), 0.75);
    EXPECT_DOUBLE_EQ(fractionalFitMissRatio(100.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(fractionalFitMissRatio(0.0, 10.0), 0.0);
}

// ---------------------------------------------------------------
// Interconnect (paper Section V-B, Eqs. 16-17)
// ---------------------------------------------------------------

TEST(Interconnect, WideSingleBusReducesToBase)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    InterconnectModel ic({BusSpec{"bus", 1e15}},
                         {{true}, {true}});
    InterconnectResult r = ic.evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.base.attainable,
                     GablesModel::evaluate(soc, u).attainable);
    EXPECT_EQ(r.bottleneckBus, -1);
}

TEST(Interconnect, NarrowBusBecomesBottleneck)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0); // 160 Gops/s base
    // Total data per op = 1/8 byte; a 1 GB/s shared bus caps
    // performance at 8 Gops/s.
    InterconnectModel ic({BusSpec{"slow", 1e9}}, {{true}, {true}});
    InterconnectResult r = ic.evaluate(soc, u);
    EXPECT_EQ(r.bottleneckBus, 0);
    EXPECT_DOUBLE_EQ(r.base.attainable, 8e9);
}

TEST(Interconnect, Eq16OnlyCountsUsers)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    // Bus 0 carries only IP[0] (D0 = 0.03125 B), bus 1 only IP[1]
    // (D1 = 0.09375 B).
    InterconnectModel ic({BusSpec{"b0", 2e9}, BusSpec{"b1", 4e9}},
                         {{true, false}, {false, true}});
    InterconnectResult r = ic.evaluate(soc, u);
    EXPECT_NEAR(r.busTimes[0], 0.03125 / 2e9, 1e-18);
    EXPECT_NEAR(r.busTimes[1], 0.09375 / 4e9, 1e-18);
    // Worst bus: b1 at 0.09375/4e9 -> 42.7 Gops/s bound.
    EXPECT_EQ(r.bottleneckBus, 1);
    EXPECT_NEAR(r.base.attainable, 4e9 / 0.09375, 1.0);
}

TEST(Interconnect, HierarchyBuilder)
{
    // Two leaf fabrics feeding a system fabric (Figure 3 shape).
    InterconnectModel ic = InterconnectModel::hierarchy(
        {"multimedia", "compute"}, {10e9, 20e9}, {0, 0, 1}, 40e9);
    EXPECT_EQ(ic.numBuses(), 3u);
    EXPECT_TRUE(ic.uses(0, 0));
    EXPECT_FALSE(ic.uses(0, 1));
    EXPECT_TRUE(ic.uses(0, 2)); // all IPs cross the system fabric
    EXPECT_TRUE(ic.uses(2, 1));
    EXPECT_TRUE(ic.uses(2, 2));
}

TEST(Interconnect, HierarchyWithoutSystemFabric)
{
    InterconnectModel ic = InterconnectModel::hierarchy(
        {"only"}, {10e9}, {0, 0}, 0.0);
    EXPECT_EQ(ic.numBuses(), 1u);
    EXPECT_TRUE(ic.uses(1, 0));
}

TEST(Interconnect, InvalidInputsRejected)
{
    EXPECT_THROW(InterconnectModel({}, {}), FatalError);
    EXPECT_THROW(InterconnectModel({BusSpec{"b", 0.0}}, {{true}}),
                 FatalError);
    EXPECT_THROW(InterconnectModel({BusSpec{"b", 1e9}},
                                   {{true, false}}),
                 FatalError);
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    InterconnectModel one_row({BusSpec{"b", 1e9}}, {{true}});
    EXPECT_THROW(one_row.evaluate(soc, u), FatalError);
}

// ---------------------------------------------------------------
// Serialized work (paper Section V-C, Eqs. 18-19)
// ---------------------------------------------------------------

TEST(Serialized, SingleIpMatchesOwnRoofline)
{
    // With one IP doing everything, serialized == concurrent ==
    // the IP's roofline with the extra Bpeak term.
    SocSpec soc("one", 10e9, 20e9, {IpSpec{"CPU", 1.0, 8e9}});
    Usecase u("u", {IpWork{1.0, 2.0}});
    double ser = SerializedModel::evaluate(soc, u).attainable;
    double con = GablesModel::evaluate(soc, u).attainable;
    EXPECT_DOUBLE_EQ(ser, con);
}

TEST(Serialized, Eq18IncludesBpeakTerm)
{
    // A huge link but tiny chip bandwidth: the Di/Bpeak term binds.
    SocSpec soc("t", 100e9, 1e9, {IpSpec{"CPU", 1.0, 1000e9}});
    Usecase u("u", {IpWork{1.0, 0.5}});
    // D = 2 bytes/op; T' = max(2/1e9, 2/1000e9, 1/100e9) = 2e-9.
    EXPECT_DOUBLE_EQ(SerializedModel::evaluate(soc, u).attainable,
                     0.5e9);
}

TEST(Serialized, TimesAddAcrossIps)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    SerializedResult r = SerializedModel::evaluate(soc, u);
    // T'0 = max(D0/Bpeak, D0/B0, C0); D0 = 0.03125, C0 = 0.25/40e9.
    double t0 = std::max({0.03125 / 20e9, 0.03125 / 6e9,
                          0.25 / 40e9});
    double t1 = std::max({0.09375 / 20e9, 0.09375 / 15e9,
                          0.75 / 200e9});
    EXPECT_NEAR(r.ipTimes[0], t0, 1e-18);
    EXPECT_NEAR(r.ipTimes[1], t1, 1e-18);
    EXPECT_NEAR(r.attainable, 1.0 / (t0 + t1), 1.0);
}

TEST(Serialized, DominantIpIdentified)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    SerializedResult r = SerializedModel::evaluate(soc, u);
    EXPECT_EQ(r.dominantIp, 1); // GPU's low reuse dominates
    EXPECT_GT(r.dominantShare, 0.5);
    EXPECT_LE(r.dominantShare, 1.0);
}

TEST(Serialized, ConcurrencySpeedupAtLeastOne)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        double f = rng.uniform(0.05, 0.95);
        SocSpec soc = SocCatalog::paperTwoIp();
        Usecase u = Usecase::twoIp("u", f, rng.logUniform(0.1, 100.0),
                                   rng.logUniform(0.1, 100.0));
        EXPECT_GE(SerializedModel::concurrencySpeedup(soc, u),
                  1.0 - 1e-12);
    }
}

TEST(Serialized, IdleIpsSkipped)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.0, 4.0, 1.0);
    SerializedResult r = SerializedModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.ipTimes[1], 0.0);
    EXPECT_EQ(r.dominantIp, 0);
}

// ---------------------------------------------------------------
// Phased composition
// ---------------------------------------------------------------

TEST(Phased, SinglePhaseMatchesUnderlyingModel)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    PhasedUsecase phased(
        "p", {Phase{"all", 1.0, PhaseMode::Concurrent, u}});
    EXPECT_DOUBLE_EQ(phased.evaluate(soc).attainable,
                     GablesModel::evaluate(soc, u).attainable);

    PhasedUsecase serial(
        "s", {Phase{"all", 1.0, PhaseMode::Exclusive, u}});
    EXPECT_DOUBLE_EQ(serial.evaluate(soc).attainable,
                     SerializedModel::evaluate(soc, u).attainable);
}

TEST(Phased, HarmonicCombinationOfPhases)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    Usecase fast = Usecase::twoIp("fast", 0.75, 8.0, 8.0); // 160 G
    Usecase slow = Usecase::twoIp("slow", 0.75, 8.0, 0.1); // slower
    double p_fast = GablesModel::evaluate(soc, fast).attainable;
    double p_slow = GablesModel::evaluate(soc, slow).attainable;

    PhasedUsecase phased(
        "p", {Phase{"a", 0.5, PhaseMode::Concurrent, fast},
              Phase{"b", 0.5, PhaseMode::Concurrent, slow}});
    PhasedResult r = phased.evaluate(soc);
    double expected = 1.0 / (0.5 / p_fast + 0.5 / p_slow);
    EXPECT_NEAR(r.attainable, expected, expected * 1e-12);
    EXPECT_EQ(r.dominantPhase, 1);
    EXPECT_NEAR(r.timeShare[0] + r.timeShare[1], 1.0, 1e-12);
}

TEST(Phased, SharesMustSumToOne)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    EXPECT_THROW(PhasedUsecase("bad",
                               {Phase{"a", 0.6, PhaseMode::Concurrent,
                                      u},
                                Phase{"b", 0.6, PhaseMode::Concurrent,
                                      u}}),
                 FatalError);
    EXPECT_THROW(PhasedUsecase("empty", {}), FatalError);
}

TEST(Phased, ZeroSharePhaseCostsNothing)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.5, 4.0, 4.0);
    PhasedUsecase phased(
        "p", {Phase{"real", 1.0, PhaseMode::Concurrent, u},
              Phase{"ghost", 0.0, PhaseMode::Exclusive, u}});
    EXPECT_DOUBLE_EQ(phased.evaluate(soc).attainable,
                     GablesModel::evaluate(soc, u).attainable);
}

} // namespace
} // namespace gables
