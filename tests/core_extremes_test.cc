/**
 * @file
 * Numerical-robustness property tests: the model must stay finite,
 * positive, and self-consistent across parameter magnitudes spanning
 * sixty orders of magnitude, and must reject non-finite inputs
 * cleanly rather than propagating NaNs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/gables.h"
#include "core/serialized.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace {

class ExtremeMagnitudes : public ::testing::TestWithParam<double>
{
};

TEST_P(ExtremeMagnitudes, EvaluateStaysFiniteAndDual)
{
    // Scale the paper SoC by the parameterized magnitude; attainable
    // performance must scale exactly linearly (the model is
    // homogeneous of degree 1 in the rate parameters) and both
    // equation forms must agree.
    double scale = GetParam();
    SocSpec soc("scaled", 40e9 * scale, 10e9 * scale,
                {IpSpec{"CPU", 1.0, 6e9 * scale},
                 IpSpec{"GPU", 5.0, 15e9 * scale}});
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);

    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_TRUE(std::isfinite(r.attainable));
    EXPECT_GT(r.attainable, 0.0);
    // Homogeneity: P(scale * rates) == scale * P(rates).
    EXPECT_NEAR(r.attainable / (1.3278e9 * scale), 1.0, 1e-4);
    // Duality holds at this magnitude too.
    EXPECT_NEAR(GablesModel::attainablePerfForm(soc, u) /
                    r.attainable,
                1.0, 1e-9);
    // Serialized stays finite and below concurrent.
    double ser = SerializedModel::evaluate(soc, u).attainable;
    EXPECT_TRUE(std::isfinite(ser));
    EXPECT_LE(ser, r.attainable * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, ExtremeMagnitudes,
                         ::testing::Values(1e-30, 1e-15, 1e-6, 1.0,
                                           1e6, 1e15, 1e30));

TEST(Extremes, ExtremeIntensitiesStayConsistent)
{
    SocSpec soc("s", 10e9, 20e9,
                {IpSpec{"A", 1.0, 8e9}, IpSpec{"B", 4.0, 12e9}});
    for (double intensity : {1e-20, 1e-6, 1e6, 1e20}) {
        Usecase u = Usecase::twoIp("u", 0.5, intensity, intensity);
        GablesResult r = GablesModel::evaluate(soc, u);
        EXPECT_TRUE(std::isfinite(r.attainable)) << intensity;
        EXPECT_GT(r.attainable, 0.0) << intensity;
        EXPECT_NEAR(GablesModel::attainablePerfForm(soc, u) /
                        r.attainable,
                    1.0, 1e-9)
            << intensity;
    }
}

TEST(Extremes, TinyFractionsDoNotBlowUp)
{
    SocSpec soc("s", 10e9, 20e9,
                {IpSpec{"A", 1.0, 8e9}, IpSpec{"B", 4.0, 12e9}});
    for (double f : {1e-15, 1e-9, 1.0 - 1e-15}) {
        Usecase u = Usecase::twoIp("u", f, 2.0, 2.0);
        GablesResult r = GablesModel::evaluate(soc, u);
        EXPECT_TRUE(std::isfinite(r.attainable)) << f;
        EXPECT_GT(r.attainable, 0.0) << f;
    }
}

TEST(Extremes, NonFiniteSpecInputsRejected)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(SocSpec("bad", inf, 1e9, {IpSpec{"A", 1.0, 1e9}}),
                 FatalError);
    EXPECT_THROW(SocSpec("bad", 1e9, inf, {IpSpec{"A", 1.0, 1e9}}),
                 FatalError);
    EXPECT_THROW(SocSpec("bad", 1e9, 1e9, {IpSpec{"A", 1.0, inf}}),
                 FatalError);
    EXPECT_THROW(SocSpec("bad", nan, 1e9, {IpSpec{"A", 1.0, 1e9}}),
                 FatalError);
    // NaN comparisons are false, so the validation predicates must
    // be written to catch them.
    EXPECT_THROW(SocSpec("bad", 1e9, 1e9, {IpSpec{"A", 1.0, nan}}),
                 FatalError);
}

TEST(Extremes, NonFiniteUsecaseInputsRejected)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(Usecase("bad", {IpWork{inf, 1.0}}), FatalError);
    EXPECT_THROW(Usecase("bad", {IpWork{nan, 1.0},
                                 IpWork{1.0, 1.0}}),
                 FatalError);
    EXPECT_THROW(Usecase("bad", {IpWork{1.0, nan}}), FatalError);
    // Infinite intensity is the documented "no traffic" convention
    // and must be accepted.
    EXPECT_NO_THROW(Usecase("ok", {IpWork{1.0, inf}}));
}

TEST(Extremes, MixedMagnitudeIpsAcrossThirtyOrders)
{
    // One IP a thousand-billion-billion times faster than the other:
    // the model must still pick the right bottleneck.
    SocSpec soc("mixed", 1.0, 1e30,
                {IpSpec{"tiny", 1.0, 1e30},
                 IpSpec{"huge", 1e30, 1e30}});
    Usecase u = Usecase::twoIp("u", 0.5, 1e6, 1e6);
    GablesResult r = GablesModel::evaluate(soc, u);
    // The tiny IP's 0.5 work at ~1 op/s dominates: P ~ 2 ops/s.
    EXPECT_NEAR(r.attainable, 2.0, 1e-6);
    EXPECT_EQ(r.bottleneckIp, 0);
}

} // namespace
} // namespace gables
