/**
 * @file
 * Unit tests for the base Gables model beyond the appendix anchors:
 * edge cases, bottleneck attribution, N-IP behaviour, and the scaled
 * roofline helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/gables.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SocSpec
threeIp()
{
    return SocSpec("three", 10e9, 20e9,
                   {IpSpec{"CPU", 1.0, 8e9}, IpSpec{"GPU", 20.0, 25e9},
                    IpSpec{"DSP", 0.5, 5e9}});
}

TEST(Gables, MismatchedSizesRejected)
{
    SocSpec soc = threeIp();
    Usecase two = Usecase::twoIp("two", 0.5, 1.0, 1.0);
    EXPECT_THROW(GablesModel::evaluate(soc, two), FatalError);
}

TEST(Gables, SingleIpReducesToRoofline)
{
    SocSpec soc("one", 10e9, 20e9, {IpSpec{"CPU", 1.0, 8e9}});
    for (double i : {0.1, 0.5, 1.25, 10.0, 100.0}) {
        Usecase u("u", {IpWork{1.0, i}});
        double expected = std::min({8e9 * i, 10e9, 20e9 * i});
        EXPECT_DOUBLE_EQ(GablesModel::evaluate(soc, u).attainable,
                         expected)
            << "intensity " << i;
    }
}

TEST(Gables, AllWorkOnOneOfThree)
{
    SocSpec soc = threeIp();
    Usecase u("dsp-only", {IpWork{0.0, 1.0}, IpWork{0.0, 1.0},
                           IpWork{1.0, 100.0}});
    GablesResult r = GablesModel::evaluate(soc, u);
    // DSP peak = 0.5 * 10 = 5 Gops/s, compute bound at I = 100.
    EXPECT_DOUBLE_EQ(r.attainable, 5e9);
    EXPECT_EQ(r.bottleneckIp, 2);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpCompute);
}

TEST(Gables, IdleIpsContributeNothing)
{
    SocSpec soc = threeIp();
    Usecase active("a", {IpWork{0.5, 4.0}, IpWork{0.5, 4.0},
                         IpWork{0.0, 1.0}});
    SocSpec two("two", 10e9, 20e9,
                {IpSpec{"CPU", 1.0, 8e9}, IpSpec{"GPU", 20.0, 25e9}});
    Usecase same("a", {IpWork{0.5, 4.0}, IpWork{0.5, 4.0}});
    EXPECT_DOUBLE_EQ(GablesModel::evaluate(soc, active).attainable,
                     GablesModel::evaluate(two, same).attainable);
}

TEST(Gables, InfiniteIntensityIsComputeOnly)
{
    SocSpec soc = threeIp();
    Usecase u("compute", {IpWork{1.0, kInf}, IpWork{0.0, 1.0},
                          IpWork{0.0, 1.0}});
    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, 10e9);
    EXPECT_DOUBLE_EQ(r.totalDataBytes, 0.0);
    EXPECT_DOUBLE_EQ(r.memoryTime, 0.0);
    EXPECT_TRUE(std::isinf(r.memoryPerfBound));
}

TEST(Gables, IpBandwidthBottleneckAttribution)
{
    // Low intensity on a narrow link with plenty of chip bandwidth.
    SocSpec soc("narrow", 10e9, 100e9,
                {IpSpec{"CPU", 1.0, 1e9}});
    Usecase u("u", {IpWork{1.0, 0.1}});
    GablesResult r = GablesModel::evaluate(soc, u);
    // Link: 1e9 * 0.1 = 0.1 Gops/s binds (memory would allow 10).
    EXPECT_DOUBLE_EQ(r.attainable, 0.1e9);
    EXPECT_EQ(r.bottleneckIp, 0);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpBandwidth);
}

TEST(Gables, MemoryWinsTies)
{
    // Construct an exact tie between IP[0] compute and memory.
    // Ppeak = 10, I = 1, Bpeak = 10: both times are 0.1 ns/op.
    SocSpec soc("tie", 10e9, 10e9, {IpSpec{"CPU", 1.0, 100e9}});
    Usecase u("u", {IpWork{1.0, 1.0}});
    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.attainable, 10e9);
    EXPECT_EQ(r.bottleneckIp, -1);
    EXPECT_EQ(r.bottleneck, BottleneckKind::Memory);
}

TEST(Gables, TimingDetailFieldsConsistent)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, u);
    for (size_t i = 0; i < r.ips.size(); ++i) {
        const IpTiming &t = r.ips[i];
        EXPECT_DOUBLE_EQ(t.time, std::max(t.computeTime,
                                          t.transferTime));
        if (u.fraction(i) > 0.0) {
            EXPECT_NEAR(t.perfBound * t.time, 1.0, 1e-12);
            EXPECT_DOUBLE_EQ(t.dataBytes,
                             u.fraction(i) / u.intensity(i));
        }
    }
    EXPECT_DOUBLE_EQ(r.totalDataBytes,
                     r.ips[0].dataBytes + r.ips[1].dataBytes);
    EXPECT_DOUBLE_EQ(r.memoryTime, r.totalDataBytes / soc.bpeak());
}

TEST(Gables, ScaledRooflineMatchesDefinition)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    // IP[1]: min(15 * x, 200) / 0.75.
    EXPECT_DOUBLE_EQ(GablesModel::scaledIpRoofline(soc, u, 1, 1.0),
                     15e9 / 0.75);
    EXPECT_DOUBLE_EQ(GablesModel::scaledIpRoofline(soc, u, 1, 1000.0),
                     200e9 / 0.75);
    // IP with no work: unbounded.
    Usecase idle1 = Usecase::twoIp("i", 0.0, 8.0, 0.1);
    EXPECT_TRUE(std::isinf(
        GablesModel::scaledIpRoofline(soc, idle1, 1, 1.0)));
}

TEST(Gables, MemoryRooflineIsSlantedOnly)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    EXPECT_DOUBLE_EQ(GablesModel::memoryRoofline(soc, 2.0), 20e9);
    EXPECT_DOUBLE_EQ(GablesModel::memoryRoofline(soc, 200.0), 2000e9);
}

TEST(Gables, BottleneckLabels)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    GablesResult r = GablesModel::evaluate(
        soc, Usecase::twoIp("6a", 0.0, 8.0, 0.1));
    EXPECT_EQ(r.bottleneckLabel(soc), "CPU compute (Ai*Ppeak)");
    r = GablesModel::evaluate(soc,
                              Usecase::twoIp("6b", 0.75, 8.0, 0.1));
    EXPECT_EQ(r.bottleneckLabel(soc), "memory interface (Bpeak)");
    r = GablesModel::evaluate(soc.withBpeak(30e9),
                              Usecase::twoIp("6c", 0.75, 8.0, 0.1));
    EXPECT_EQ(r.bottleneckLabel(soc), "GPU link bandwidth (Bi)");
}

TEST(Gables, ToStringCoversKinds)
{
    EXPECT_EQ(toString(BottleneckKind::IpCompute), "IP compute");
    EXPECT_EQ(toString(BottleneckKind::IpBandwidth), "IP bandwidth");
    EXPECT_EQ(toString(BottleneckKind::Memory), "memory interface");
}

TEST(Gables, BottleneckLabelFallsBackToIndexForUnnamedIp)
{
    // An IP with an empty name is labeled by its index.
    SocSpec soc("anon", 10e9, 100e9,
                {IpSpec{"", 1.0, 100e9}, IpSpec{"", 2.0, 1e9}});
    Usecase u = Usecase::twoIp("u", 1.0, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpBandwidth);
    EXPECT_EQ(r.bottleneckLabel(soc), "IP[1] link bandwidth (Bi)");

    Usecase c = Usecase::twoIp("c", 0.0, kInf, 1.0);
    r = GablesModel::evaluate(soc, c);
    EXPECT_EQ(r.bottleneckLabel(soc), "IP[0] compute (Ai*Ppeak)");
}

// Tie-break contract: memory first, then the lowest IP index. The
// three tests below share exact power-of-two parameters so every
// compared time is the same double, making the ties exact rather
// than approximate.
TEST(Gables, ThreeWayTieGoesToMemory)
{
    // Per IP: C = 0.5/1 = 0.5, D/B = 0.5/1 = 0.5; memory: 1/2 = 0.5.
    SocSpec soc("tie3", 1.0, 2.0,
                {IpSpec{"a", 1.0, 1.0}, IpSpec{"b", 1.0, 1.0}});
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.memoryTime, 0.5);
    EXPECT_DOUBLE_EQ(r.ips[0].time, 0.5);
    EXPECT_DOUBLE_EQ(r.ips[1].time, 0.5);
    EXPECT_EQ(r.bottleneckIp, -1);
    EXPECT_EQ(r.bottleneck, BottleneckKind::Memory);
    EXPECT_EQ(r.bottleneckLabel(soc), "memory interface (Bpeak)");
}

TEST(Gables, IpTieGoesToLowestIndex)
{
    // Same IPs, Bpeak = 4: memory drops to 0.25, both IPs tie at 0.5
    // -> IP[0] is attributed; its compute and transfer times also
    // tie, and compute wins that inner tie.
    SocSpec soc("tie2", 1.0, 4.0,
                {IpSpec{"a", 1.0, 1.0}, IpSpec{"b", 1.0, 1.0}});
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.memoryTime, 0.25);
    EXPECT_EQ(r.bottleneckIp, 0);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpCompute);
    EXPECT_EQ(r.bottleneckLabel(soc), "a compute (Ai*Ppeak)");
}

TEST(Gables, NarrowLinkBreaksIpTieTowardBandwidth)
{
    // Halving IP[0]'s link doubles its transfer time (1.0 > 0.5):
    // now a single strict maximum, attributed as link bandwidth.
    SocSpec soc("narrow", 1.0, 4.0,
                {IpSpec{"a", 1.0, 0.5}, IpSpec{"b", 1.0, 1.0}});
    Usecase u = Usecase::twoIp("u", 0.5, 1.0, 1.0);
    GablesResult r = GablesModel::evaluate(soc, u);
    EXPECT_DOUBLE_EQ(r.ips[0].transferTime, 1.0);
    EXPECT_EQ(r.bottleneckIp, 0);
    EXPECT_EQ(r.bottleneck, BottleneckKind::IpBandwidth);
    EXPECT_EQ(r.bottleneckLabel(soc), "a link bandwidth (Bi)");
}

TEST(Gables, SingleActiveIpMatchesItsIsolatedRoofline)
{
    // With all work on one IP, evaluate() equals that IP's isolated
    // roofline (ipRoofline clamps the slant to min(Bi, Bpeak)) at
    // every intensity.
    SocSpec soc = threeIp();
    for (size_t ip = 0; ip < soc.numIps(); ++ip) {
        Roofline isolated = soc.ipRoofline(ip);
        for (double i : {0.05, 0.5, 2.0, 50.0}) {
            std::vector<IpWork> work(soc.numIps(), IpWork{0.0, 1.0});
            work[ip] = IpWork{1.0, i};
            Usecase u("solo", work);
            EXPECT_DOUBLE_EQ(GablesModel::evaluate(soc, u).attainable,
                             isolated.attainable(i))
                << "ip " << ip << " I " << i;
        }
    }
}

TEST(Gables, WorkSplitNeverBeatsIdealAggregate)
{
    // Sanity: attainable can never exceed the sum of all IP peaks.
    SocSpec soc = threeIp();
    double aggregate = 0.0;
    for (size_t i = 0; i < soc.numIps(); ++i)
        aggregate += soc.ipPeakPerf(i);
    Usecase u("u", {IpWork{0.2, kInf}, IpWork{0.6, kInf},
                    IpWork{0.2, kInf}});
    EXPECT_LE(GablesModel::evaluate(soc, u).attainable, aggregate);
}

} // namespace
} // namespace gables
