/**
 * @file
 * Tests for the LogCA baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/logca.h"
#include "util/logging.h"

namespace gables {
namespace {

LogCAModel::Params
typicalDsp()
{
    // A Hexagon-like offload: 10 us dispatch overhead, 1 us/item
    // DMA, 0.1 ms/item host compute, 8x acceleration (the paper's
    // Hexagon-vs-CPU figure), linear work.
    LogCAModel::Params p;
    p.overhead = 10e-6;
    p.latency = 1e-6;
    p.computePerItem = 100e-6;
    p.acceleration = 8.0;
    p.beta = 1.0;
    p.eta = 1.0;
    return p;
}

TEST(LogCA, TimesFollowDefinition)
{
    LogCAModel m(typicalDsp());
    double g = 100.0;
    EXPECT_DOUBLE_EQ(m.hostTime(g), 100e-6 * g);
    EXPECT_DOUBLE_EQ(m.accelTime(g),
                     10e-6 + 1e-6 * g + 100e-6 * g / 8.0);
}

TEST(LogCA, SmallOffloadsLose)
{
    LogCAModel m(typicalDsp());
    // One item: 100 us on the host vs 10 + 1 + 12.5 us offloaded —
    // already a win here; shrink the item to make overhead dominate.
    LogCAModel::Params tiny = typicalDsp();
    tiny.computePerItem = 5e-6;
    LogCAModel m2(tiny);
    EXPECT_LT(m2.speedup(1.0), 1.0);
    EXPECT_GT(m2.speedup(1e6), 1.0);
}

TEST(LogCA, SpeedupMonotoneInGranularity)
{
    LogCAModel m(typicalDsp());
    double prev = 0.0;
    for (double g : {1.0, 10.0, 100.0, 1e4, 1e6}) {
        double s = m.speedup(g);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

TEST(LogCA, AsymptoteWithFixedLatencyIsA)
{
    LogCAModel::Params p = typicalDsp();
    p.eta = 0.0; // fixed-size descriptor
    LogCAModel m(p);
    EXPECT_DOUBLE_EQ(m.asymptoticSpeedup(), 8.0);
    EXPECT_NEAR(m.speedup(1e9), 8.0, 1e-3);
}

TEST(LogCA, ProportionalTransferCapsTheWin)
{
    // eta = 1, beta = 1: transfer scales with work, so the win caps
    // at C / (L + C/A) < A — the LogCA analogue of a bandwidth-bound
    // Gables offload.
    LogCAModel m(typicalDsp());
    double cap = 100e-6 / (1e-6 + 100e-6 / 8.0);
    EXPECT_NEAR(m.asymptoticSpeedup(), cap, 1e-12);
    EXPECT_LT(cap, 8.0);
    EXPECT_NEAR(m.speedup(1e12), cap, cap * 1e-3);
}

TEST(LogCA, BreakEvenGranularity)
{
    LogCAModel::Params p = typicalDsp();
    p.computePerItem = 5e-6;
    LogCAModel m(p);
    double g1 = m.breakEvenGranularity();
    ASSERT_TRUE(std::isfinite(g1));
    EXPECT_GT(g1, 0.0);
    EXPECT_NEAR(m.speedup(g1), 1.0, 1e-6);
    EXPECT_LT(m.speedup(g1 * 0.5), 1.0);
    EXPECT_GT(m.speedup(g1 * 2.0), 1.0);
}

TEST(LogCA, BreakEvenZeroWhenAlwaysWins)
{
    LogCAModel::Params p = typicalDsp();
    p.overhead = 0.0;
    p.latency = 0.0;
    LogCAModel m(p);
    EXPECT_DOUBLE_EQ(m.breakEvenGranularity(), 0.0);
}

TEST(LogCA, BreakEvenInfiniteWhenOffloadNeverPays)
{
    // Transfer costs more than the host compute saved.
    LogCAModel::Params p;
    p.latency = 1e-3;
    p.computePerItem = 1e-6;
    p.acceleration = 100.0;
    p.beta = 1.0;
    p.eta = 1.0;
    LogCAModel m(p);
    EXPECT_TRUE(std::isinf(m.breakEvenGranularity()));
}

TEST(LogCA, HalfSpeedupGranularity)
{
    LogCAModel::Params p = typicalDsp();
    p.eta = 0.0;
    LogCAModel m(p);
    double g_half = m.halfSpeedupGranularity();
    ASSERT_TRUE(std::isfinite(g_half));
    EXPECT_NEAR(m.speedup(g_half), 4.0, 1e-5);
}

TEST(LogCA, SuperlinearWorkFavorsOffload)
{
    // beta = 1.5 (e.g. sorting-like): compute outgrows transfer, so
    // the asymptote recovers the full A even with eta = 1.
    LogCAModel::Params p = typicalDsp();
    p.beta = 1.5;
    LogCAModel m(p);
    EXPECT_DOUBLE_EQ(m.asymptoticSpeedup(), 8.0);
}

TEST(LogCA, InvalidParamsRejected)
{
    LogCAModel::Params p = typicalDsp();
    p.computePerItem = 0.0;
    EXPECT_THROW(LogCAModel{p}, FatalError);
    p = typicalDsp();
    p.acceleration = 0.0;
    EXPECT_THROW(LogCAModel{p}, FatalError);
    p = typicalDsp();
    p.eta = 0.5;
    EXPECT_THROW(LogCAModel{p}, FatalError);
    p = typicalDsp();
    p.latency = -1.0;
    EXPECT_THROW(LogCAModel{p}, FatalError);
}

} // namespace
} // namespace gables
