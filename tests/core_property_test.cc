/**
 * @file
 * Property-based tests of the Gables model over randomized SoCs and
 * usecases (parameterized over seeds):
 *
 *  - duality: the time-form (Eqs. 9-11) and performance-form
 *    (Eqs. 12-14) equations agree;
 *  - monotonicity: performance never decreases when any hardware
 *    resource (Ppeak, Bpeak, Ai, Bi) or any software intensity Ii
 *    grows;
 *  - bound consistency: Pattainable equals the minimum over the
 *    scaled rooflines evaluated at their operating intensities;
 *  - concurrency dominance: base (concurrent) Gables never loses to
 *    the serialized extension.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/gables.h"
#include "core/serialized.h"
#include "util/rng.h"

namespace gables {
namespace {

/** Draw a random but valid SoC with 1-6 IPs. */
SocSpec
randomSoc(Rng &rng)
{
    size_t n = static_cast<size_t>(rng.uniformInt(1, 6));
    std::vector<IpSpec> ips;
    for (size_t i = 0; i < n; ++i) {
        IpSpec ip;
        ip.name = "IP" + std::to_string(i);
        ip.acceleration = i == 0 ? 1.0 : rng.logUniform(0.1, 100.0);
        ip.bandwidth = rng.logUniform(1e9, 100e9);
        ips.push_back(ip);
    }
    return SocSpec("random", rng.logUniform(1e9, 100e9),
                   rng.logUniform(1e9, 100e9), std::move(ips));
}

/** Draw a random usecase over n IPs (some IPs may get ~no work). */
Usecase
randomUsecase(Rng &rng, size_t n)
{
    std::vector<double> f = rng.simplex(n);
    std::vector<IpWork> work(n);
    for (size_t i = 0; i < n; ++i)
        work[i] = IpWork{f[i], rng.logUniform(0.01, 1024.0)};
    return Usecase("random", std::move(work));
}

class GablesProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GablesProperty, TimeAndPerformanceFormsAgree)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double time_form = GablesModel::evaluate(soc, u).attainable;
        double perf_form = GablesModel::attainablePerfForm(soc, u);
        EXPECT_NEAR(time_form / perf_form, 1.0, 1e-9)
            << "seed " << GetParam() << " trial " << trial;
    }
}

TEST_P(GablesProperty, MonotoneInBpeak)
{
    Rng rng(GetParam() ^ 0x1111);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        double more = GablesModel::evaluate(soc.withBpeak(soc.bpeak() *
                                                          2.0),
                                            u)
                          .attainable;
        EXPECT_GE(more, base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, MonotoneInPpeak)
{
    Rng rng(GetParam() ^ 0x2222);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        SocSpec faster(soc.name(), soc.ppeak() * 2.0, soc.bpeak(),
                       soc.ips());
        double more = GablesModel::evaluate(faster, u).attainable;
        EXPECT_GE(more, base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, MonotoneInIpKnobs)
{
    Rng rng(GetParam() ^ 0x3333);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        if (soc.numIps() < 2)
            continue;
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        size_t ip = static_cast<size_t>(rng.uniformInt(
            1, static_cast<int64_t>(soc.numIps()) - 1));
        EXPECT_GE(GablesModel::evaluate(
                      soc.withIpAcceleration(
                          ip, soc.ip(ip).acceleration * 3.0),
                      u)
                      .attainable,
                  base * (1.0 - 1e-12));
        EXPECT_GE(GablesModel::evaluate(
                      soc.withIpBandwidth(ip,
                                          soc.ip(ip).bandwidth * 3.0),
                      u)
                      .attainable,
                  base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, MonotoneInIntensity)
{
    Rng rng(GetParam() ^ 0x4444);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        size_t ip = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(soc.numIps()) - 1));
        Usecase better = u.withWork(
            ip, IpWork{u.fraction(ip), u.intensity(ip) * 4.0});
        EXPECT_GE(GablesModel::evaluate(soc, better).attainable,
                  base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, AttainableEqualsMinOfSelectedBounds)
{
    Rng rng(GetParam() ^ 0x5555);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        GablesResult r = GablesModel::evaluate(soc, u);
        double min_bound = r.memoryPerfBound;
        for (size_t i = 0; i < soc.numIps(); ++i) {
            double b = GablesModel::scaledIpRoofline(soc, u, i,
                                                     u.intensity(i));
            min_bound = std::min(min_bound, b);
        }
        EXPECT_NEAR(r.attainable / min_bound, 1.0, 1e-9);
    }
}

TEST_P(GablesProperty, ConcurrentNeverLosesToSerialized)
{
    Rng rng(GetParam() ^ 0x6666);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double concurrent = GablesModel::evaluate(soc, u).attainable;
        double serialized =
            SerializedModel::evaluate(soc, u).attainable;
        EXPECT_GE(concurrent, serialized * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, BottleneckResourceHasUnitElasticityLocally)
{
    // Growing the binding resource slightly must grow performance;
    // growing a strictly-slack IP knob must not change it.
    Rng rng(GetParam() ^ 0x7777);
    for (int trial = 0; trial < 20; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        GablesResult r = GablesModel::evaluate(soc, u);
        if (r.bottleneckIp < 0) {
            double grown = GablesModel::evaluate(
                               soc.withBpeak(soc.bpeak() * 1.0001), u)
                               .attainable;
            EXPECT_GT(grown, r.attainable);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GablesProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
} // namespace gables
