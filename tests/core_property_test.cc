/**
 * @file
 * Property-based tests of the Gables model over randomized SoCs and
 * usecases (parameterized over seeds):
 *
 *  - duality: the time-form (Eqs. 9-11) and performance-form
 *    (Eqs. 12-14) equations agree;
 *  - monotonicity: performance never decreases when any hardware
 *    resource (Ppeak, Bpeak, Ai, Bi) or any software intensity Ii
 *    grows;
 *  - bound consistency: Pattainable equals the minimum over the
 *    scaled rooflines evaluated at their operating intensities;
 *  - concurrency dominance: base (concurrent) Gables never loses to
 *    the serialized extension;
 *  - explorer invariants: a candidate's minPerf is the minimum of
 *    its per-usecase scores, and Pareto extraction is independent of
 *    the order the grid is enumerated in.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "analysis/explorer.h"
#include "core/gables.h"
#include "core/serialized.h"
#include "util/rng.h"

namespace gables {
namespace {

/** Draw a random but valid SoC with 1-6 IPs. */
SocSpec
randomSoc(Rng &rng)
{
    size_t n = static_cast<size_t>(rng.uniformInt(1, 6));
    std::vector<IpSpec> ips;
    for (size_t i = 0; i < n; ++i) {
        IpSpec ip;
        ip.name = "IP" + std::to_string(i);
        ip.acceleration = i == 0 ? 1.0 : rng.logUniform(0.1, 100.0);
        ip.bandwidth = rng.logUniform(1e9, 100e9);
        ips.push_back(ip);
    }
    return SocSpec("random", rng.logUniform(1e9, 100e9),
                   rng.logUniform(1e9, 100e9), std::move(ips));
}

/** Draw a random usecase over n IPs (some IPs may get ~no work). */
Usecase
randomUsecase(Rng &rng, size_t n)
{
    std::vector<double> f = rng.simplex(n);
    std::vector<IpWork> work(n);
    for (size_t i = 0; i < n; ++i)
        work[i] = IpWork{f[i], rng.logUniform(0.01, 1024.0)};
    return Usecase("random", std::move(work));
}

class GablesProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(GablesProperty, TimeAndPerformanceFormsAgree)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double time_form = GablesModel::evaluate(soc, u).attainable;
        double perf_form = GablesModel::attainablePerfForm(soc, u);
        EXPECT_NEAR(time_form / perf_form, 1.0, 1e-9)
            << "seed " << GetParam() << " trial " << trial;
    }
}

TEST_P(GablesProperty, MonotoneInBpeak)
{
    Rng rng(GetParam() ^ 0x1111);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        double more = GablesModel::evaluate(soc.withBpeak(soc.bpeak() *
                                                          2.0),
                                            u)
                          .attainable;
        EXPECT_GE(more, base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, MonotoneInPpeak)
{
    Rng rng(GetParam() ^ 0x2222);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        SocSpec faster(soc.name(), soc.ppeak() * 2.0, soc.bpeak(),
                       soc.ips());
        double more = GablesModel::evaluate(faster, u).attainable;
        EXPECT_GE(more, base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, MonotoneInIpKnobs)
{
    Rng rng(GetParam() ^ 0x3333);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        if (soc.numIps() < 2)
            continue;
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        size_t ip = static_cast<size_t>(rng.uniformInt(
            1, static_cast<int64_t>(soc.numIps()) - 1));
        EXPECT_GE(GablesModel::evaluate(
                      soc.withIpAcceleration(
                          ip, soc.ip(ip).acceleration * 3.0),
                      u)
                      .attainable,
                  base * (1.0 - 1e-12));
        EXPECT_GE(GablesModel::evaluate(
                      soc.withIpBandwidth(ip,
                                          soc.ip(ip).bandwidth * 3.0),
                      u)
                      .attainable,
                  base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, MonotoneInIntensity)
{
    Rng rng(GetParam() ^ 0x4444);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double base = GablesModel::evaluate(soc, u).attainable;
        size_t ip = static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(soc.numIps()) - 1));
        Usecase better = u.withWork(
            ip, IpWork{u.fraction(ip), u.intensity(ip) * 4.0});
        EXPECT_GE(GablesModel::evaluate(soc, better).attainable,
                  base * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, AttainableEqualsMinOfSelectedBounds)
{
    Rng rng(GetParam() ^ 0x5555);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        GablesResult r = GablesModel::evaluate(soc, u);
        double min_bound = r.memoryPerfBound;
        for (size_t i = 0; i < soc.numIps(); ++i) {
            double b = GablesModel::scaledIpRoofline(soc, u, i,
                                                     u.intensity(i));
            min_bound = std::min(min_bound, b);
        }
        EXPECT_NEAR(r.attainable / min_bound, 1.0, 1e-9);
    }
}

TEST_P(GablesProperty, ConcurrentNeverLosesToSerialized)
{
    Rng rng(GetParam() ^ 0x6666);
    for (int trial = 0; trial < 30; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        double concurrent = GablesModel::evaluate(soc, u).attainable;
        double serialized =
            SerializedModel::evaluate(soc, u).attainable;
        EXPECT_GE(concurrent, serialized * (1.0 - 1e-12));
    }
}

TEST_P(GablesProperty, BottleneckResourceHasUnitElasticityLocally)
{
    // Growing the binding resource slightly must grow performance;
    // growing a strictly-slack IP knob must not change it.
    Rng rng(GetParam() ^ 0x7777);
    for (int trial = 0; trial < 20; ++trial) {
        SocSpec soc = randomSoc(rng);
        Usecase u = randomUsecase(rng, soc.numIps());
        GablesResult r = GablesModel::evaluate(soc, u);
        if (r.bottleneckIp < 0) {
            double grown = GablesModel::evaluate(
                               soc.withBpeak(soc.bpeak() * 1.0001), u)
                               .attainable;
            EXPECT_GT(grown, r.attainable);
        }
    }
}

/** Draw a random SoC guaranteed to have at least two IPs. */
SocSpec
randomMultiIpSoc(Rng &rng)
{
    SocSpec soc = randomSoc(rng);
    while (soc.numIps() < 2)
        soc = randomSoc(rng);
    return soc;
}

/** A random explorer over Bpeak and A1 grids for @p soc. */
DesignExplorer
randomExplorer(Rng &rng, const SocSpec &soc,
               std::vector<double> bpeaks, std::vector<double> accels)
{
    size_t n_usecases = static_cast<size_t>(rng.uniformInt(1, 4));
    std::vector<Usecase> usecases;
    for (size_t i = 0; i < n_usecases; ++i)
        usecases.push_back(randomUsecase(rng, soc.numIps()));
    CostModel cost;
    cost.costPerAcceleration = rng.uniform(0.1, 2.0);
    cost.costPerBpeak = rng.logUniform(1e-10, 1e-8);
    DesignExplorer ex(soc, std::move(usecases), cost);
    ex.sweepBpeak(std::move(bpeaks));
    ex.sweepAcceleration(1, std::move(accels));
    return ex;
}

TEST_P(GablesProperty, ExplorerMinPerfIsWorstUsecase)
{
    Rng rng(GetParam() ^ 0x8888);
    for (int trial = 0; trial < 5; ++trial) {
        SocSpec soc = randomMultiIpSoc(rng);
        std::vector<double> bpeaks, accels;
        for (int i = 0; i < 4; ++i) {
            bpeaks.push_back(rng.logUniform(1e9, 100e9));
            accels.push_back(rng.logUniform(0.5, 50.0));
        }
        DesignExplorer ex =
            randomExplorer(rng, soc, bpeaks, accels);
        for (const Candidate &c : ex.explore()) {
            ASSERT_FALSE(c.perUsecase.empty());
            EXPECT_EQ(c.minPerf,
                      *std::min_element(c.perUsecase.begin(),
                                        c.perUsecase.end()))
                << "seed " << GetParam() << " trial " << trial;
        }
    }
}

TEST_P(GablesProperty, ExplorerParetoOrderIndependent)
{
    // Permuting the enumeration order of the knob grids must not
    // change which designs are Pareto-optimal.
    Rng rng(GetParam() ^ 0x9999);
    for (int trial = 0; trial < 5; ++trial) {
        SocSpec soc = randomMultiIpSoc(rng);
        std::vector<double> bpeaks, accels;
        for (int i = 0; i < 4; ++i) {
            bpeaks.push_back(rng.logUniform(1e9, 100e9));
            accels.push_back(rng.logUniform(0.5, 50.0));
        }
        // Fisher-Yates permutations of both grids, rng-driven.
        std::vector<double> bpeaks_p = bpeaks, accels_p = accels;
        for (size_t i = bpeaks_p.size(); i > 1; --i)
            std::swap(bpeaks_p[i - 1],
                      bpeaks_p[static_cast<size_t>(rng.uniformInt(
                          0, static_cast<int64_t>(i) - 1))]);
        for (size_t i = accels_p.size(); i > 1; --i)
            std::swap(accels_p[i - 1],
                      accels_p[static_cast<size_t>(rng.uniformInt(
                          0, static_cast<int64_t>(i) - 1))]);

        uint64_t fork = rng.next(); // same downstream stream twice
        Rng rng_a(fork), rng_b(fork);
        DesignExplorer ex =
            randomExplorer(rng_a, soc, bpeaks, accels);
        DesignExplorer ex_p =
            randomExplorer(rng_b, soc, bpeaks_p, accels_p);

        // Key each candidate by its knob values; the Pareto flag
        // must agree between the two enumerations.
        using Key = std::tuple<double, double>;
        std::map<Key, bool> pareto;
        auto candidates = ex.explore();
        for (const Candidate &c : candidates)
            pareto[{c.soc.bpeak(), c.soc.ip(1).acceleration}] =
                c.pareto;
        auto permuted = ex_p.explore();
        ASSERT_EQ(permuted.size(), candidates.size());
        for (const Candidate &c : permuted) {
            Key key{c.soc.bpeak(), c.soc.ip(1).acceleration};
            ASSERT_TRUE(pareto.count(key));
            EXPECT_EQ(c.pareto, pareto[key])
                << "seed " << GetParam() << " trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GablesProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
} // namespace gables
