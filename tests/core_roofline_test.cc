/**
 * @file
 * Unit tests for the single-IP Roofline model.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/roofline.h"
#include "util/logging.h"

namespace gables {
namespace {

TEST(Roofline, BandwidthBoundRegion)
{
    Roofline r(40e9, 10e9);
    EXPECT_DOUBLE_EQ(r.attainable(1.0), 10e9);
    EXPECT_DOUBLE_EQ(r.attainable(2.0), 20e9);
}

TEST(Roofline, ComputeBoundRegion)
{
    Roofline r(40e9, 10e9);
    EXPECT_DOUBLE_EQ(r.attainable(8.0), 40e9);
    EXPECT_DOUBLE_EQ(r.attainable(1000.0), 40e9);
}

TEST(Roofline, RidgePoint)
{
    Roofline r(40e9, 10e9);
    EXPECT_DOUBLE_EQ(r.ridgePoint(), 4.0);
    // At the ridge both bounds agree.
    EXPECT_DOUBLE_EQ(r.attainable(4.0), 40e9);
    EXPECT_TRUE(r.computeBound(4.0));
    EXPECT_FALSE(r.computeBound(3.999));
}

TEST(Roofline, ZeroIntensityGivesZero)
{
    Roofline r(40e9, 10e9);
    EXPECT_DOUBLE_EQ(r.attainable(0.0), 0.0);
}

TEST(Roofline, InfiniteIntensityGivesPeak)
{
    Roofline r(40e9, 10e9);
    EXPECT_DOUBLE_EQ(
        r.attainable(std::numeric_limits<double>::infinity()), 40e9);
}

TEST(Roofline, NegativeIntensityRejected)
{
    Roofline r(40e9, 10e9);
    EXPECT_THROW(r.attainable(-1.0), FatalError);
}

TEST(Roofline, InvalidConstruction)
{
    EXPECT_THROW(Roofline(0.0, 10e9), FatalError);
    EXPECT_THROW(Roofline(40e9, 0.0), FatalError);
    EXPECT_THROW(Roofline(-1.0, 10e9), FatalError);
}

TEST(Roofline, PaperCpuNumbers)
{
    // Figure 7a: CPU peak 7.5 GFLOPs/s, DRAM 15.1 GB/s.
    Roofline cpu(7.5e9, 15.1e9, "CPU");
    EXPECT_DOUBLE_EQ(cpu.attainable(0.25), 15.1e9 * 0.25);
    EXPECT_DOUBLE_EQ(cpu.attainable(1.0), 7.5e9);
    EXPECT_NEAR(cpu.ridgePoint(), 0.4967, 1e-3);
}

TEST(Roofline, PaperGpuNumbers)
{
    // Figure 7b: GPU 349.6 GFLOPs/s, DRAM 24.4 GB/s.
    Roofline gpu(349.6e9, 24.4e9, "GPU");
    EXPECT_NEAR(gpu.ridgePoint(), 14.33, 0.01);
    EXPECT_DOUBLE_EQ(gpu.attainable(1.0), 24.4e9);
    EXPECT_DOUBLE_EQ(gpu.attainable(100.0), 349.6e9);
}

TEST(Roofline, ComputeCeilingApplies)
{
    Roofline r(40e9, 10e9);
    r.addComputeCeiling("no SIMD", 10e9);
    EXPECT_DOUBLE_EQ(r.attainableWithCeilings(8.0), 10e9);
    // The full roof ignores ceilings.
    EXPECT_DOUBLE_EQ(r.attainable(8.0), 40e9);
}

TEST(Roofline, BandwidthCeilingApplies)
{
    Roofline r(40e9, 10e9);
    r.addBandwidthCeiling("no prefetch", 5e9);
    EXPECT_DOUBLE_EQ(r.attainableWithCeilings(1.0), 5e9);
    EXPECT_DOUBLE_EQ(r.attainableWithCeilings(100.0), 40e9);
}

TEST(Roofline, LowestCeilingWins)
{
    Roofline r(40e9, 10e9);
    r.addComputeCeiling("c1", 30e9);
    r.addComputeCeiling("c2", 20e9);
    EXPECT_DOUBLE_EQ(r.attainableWithCeilings(100.0), 20e9);
    // Ceilings are kept sorted descending.
    EXPECT_DOUBLE_EQ(r.computeCeilings().front().value, 30e9);
    EXPECT_DOUBLE_EQ(r.computeCeilings().back().value, 20e9);
}

TEST(Roofline, CeilingAboveRoofRejected)
{
    Roofline r(40e9, 10e9);
    EXPECT_THROW(r.addComputeCeiling("too high", 50e9), FatalError);
    EXPECT_THROW(r.addBandwidthCeiling("too high", 20e9), FatalError);
    EXPECT_THROW(r.addComputeCeiling("zero", 0.0), FatalError);
}

TEST(Roofline, CeilingsWithoutAnyAddedEqualRoof)
{
    Roofline r(40e9, 10e9);
    for (double i : {0.1, 1.0, 4.0, 100.0})
        EXPECT_DOUBLE_EQ(r.attainableWithCeilings(i), r.attainable(i));
}

} // namespace
} // namespace gables
