/**
 * @file
 * Tests for JSON serialization of model inputs and results.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/serialize.h"
#include "soc/catalog.h"

namespace gables {
namespace {

TEST(Serialize, SocSpecFields)
{
    std::ostringstream oss;
    writeJson(oss, SocCatalog::paperTwoIp());
    std::string json = oss.str();
    EXPECT_NE(json.find("\"name\": \"paper two-IP\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ppeak_ops_per_sec\": 40000000000"),
              std::string::npos);
    EXPECT_NE(json.find("\"acceleration\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"ips\""), std::string::npos);
}

TEST(Serialize, UsecaseFields)
{
    std::ostringstream oss;
    writeJson(oss, Usecase::twoIp("6b", 0.75, 8.0, 0.1));
    std::string json = oss.str();
    EXPECT_NE(json.find("\"name\": \"6b\""), std::string::npos);
    EXPECT_NE(json.find("\"fraction\": 0.25"), std::string::npos);
    EXPECT_NE(json.find("\"intensity_ops_per_byte\": 0.1"),
              std::string::npos);
    EXPECT_NE(json.find("\"average_intensity\": 0.1327"),
              std::string::npos);
}

TEST(Serialize, FullEvaluation)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    GablesResult r = GablesModel::evaluate(soc, u);
    std::ostringstream oss;
    writeJson(oss, soc, u, r);
    std::string json = oss.str();
    EXPECT_NE(json.find("\"soc\""), std::string::npos);
    EXPECT_NE(json.find("\"usecase\""), std::string::npos);
    EXPECT_NE(json.find("\"result\""), std::string::npos);
    EXPECT_NE(json.find("\"bottleneck\": \"memory interface\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bottleneck_ip\": -1"), std::string::npos);
    // The attainable bound (1.3278e9) appears in full precision.
    EXPECT_NE(json.find("\"attainable_ops_per_sec\": 1327"),
              std::string::npos);
}

TEST(Serialize, BalancedJsonIsWellFormedEnoughToCount)
{
    // Cheap structural check: brace/bracket balance.
    SocSpec soc = SocCatalog::snapdragon835();
    Usecase u("u", {IpWork{0.3, 4.0}, IpWork{0.6, 2.0},
                    IpWork{0.1, 1.0}});
    std::ostringstream oss;
    writeJson(oss, soc, u, GablesModel::evaluate(soc, u));
    std::string json = oss.str();
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += (c == '{') - (c == '}');
        brackets += (c == '[') - (c == ']');
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

} // namespace
} // namespace gables
