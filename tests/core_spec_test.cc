/**
 * @file
 * Unit tests for SocSpec and Usecase validation and accessors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/soc_spec.h"
#include "core/usecase.h"
#include "util/logging.h"

namespace gables {
namespace {

SocSpec
paperSoc()
{
    return SocSpec("paper", 40e9, 10e9,
                   {IpSpec{"CPU", 1.0, 6e9}, IpSpec{"GPU", 5.0, 15e9}});
}

TEST(SocSpec, AccessorsAndDerived)
{
    SocSpec soc = paperSoc();
    EXPECT_EQ(soc.numIps(), 2u);
    EXPECT_DOUBLE_EQ(soc.ppeak(), 40e9);
    EXPECT_DOUBLE_EQ(soc.bpeak(), 10e9);
    EXPECT_DOUBLE_EQ(soc.ipPeakPerf(0), 40e9);
    EXPECT_DOUBLE_EQ(soc.ipPeakPerf(1), 200e9);
    EXPECT_EQ(soc.ip(1).name, "GPU");
}

TEST(SocSpec, IpIndexByName)
{
    SocSpec soc = paperSoc();
    EXPECT_EQ(soc.ipIndex("CPU"), 0u);
    EXPECT_EQ(soc.ipIndex("GPU"), 1u);
    EXPECT_THROW(soc.ipIndex("DSP"), FatalError);
}

TEST(SocSpec, IpOutOfRange)
{
    SocSpec soc = paperSoc();
    EXPECT_THROW(soc.ip(2), FatalError);
    EXPECT_THROW(soc.ipPeakPerf(99), FatalError);
}

TEST(SocSpec, A0MustBeOne)
{
    EXPECT_THROW(SocSpec("bad", 40e9, 10e9,
                         {IpSpec{"CPU", 2.0, 6e9}}),
                 FatalError);
}

TEST(SocSpec, RejectsNonPositiveRates)
{
    EXPECT_THROW(SocSpec("bad", 0.0, 10e9, {IpSpec{"CPU", 1.0, 6e9}}),
                 FatalError);
    EXPECT_THROW(SocSpec("bad", 40e9, 0.0, {IpSpec{"CPU", 1.0, 6e9}}),
                 FatalError);
    EXPECT_THROW(SocSpec("bad", 40e9, 10e9, {IpSpec{"CPU", 1.0, 0.0}}),
                 FatalError);
    EXPECT_THROW(SocSpec("bad", 40e9, 10e9,
                         {IpSpec{"CPU", 1.0, 6e9},
                          IpSpec{"GPU", -5.0, 15e9}}),
                 FatalError);
}

TEST(SocSpec, RejectsEmptyIpList)
{
    EXPECT_THROW(SocSpec("bad", 40e9, 10e9, {}), FatalError);
}

TEST(SocSpec, WithBpeakCopies)
{
    SocSpec soc = paperSoc();
    SocSpec modified = soc.withBpeak(30e9);
    EXPECT_DOUBLE_EQ(modified.bpeak(), 30e9);
    EXPECT_DOUBLE_EQ(soc.bpeak(), 10e9); // original untouched
}

TEST(SocSpec, WithIpBandwidthAndAcceleration)
{
    SocSpec soc = paperSoc();
    SocSpec m1 = soc.withIpBandwidth(1, 99e9);
    EXPECT_DOUBLE_EQ(m1.ip(1).bandwidth, 99e9);
    SocSpec m2 = soc.withIpAcceleration(1, 7.0);
    EXPECT_DOUBLE_EQ(m2.ip(1).acceleration, 7.0);
    EXPECT_THROW(soc.withIpBandwidth(9, 1e9), FatalError);
}

TEST(SocSpec, WithIpAppends)
{
    SocSpec soc = paperSoc().withIp(IpSpec{"DSP", 0.4, 5.4e9});
    EXPECT_EQ(soc.numIps(), 3u);
    EXPECT_EQ(soc.ip(2).name, "DSP");
}

TEST(SocSpec, IpRooflineClampsToBpeak)
{
    SocSpec soc = paperSoc();
    // GPU link is 15 GB/s but the chip only has 10 GB/s to DRAM.
    Roofline gpu = soc.ipRoofline(1);
    EXPECT_DOUBLE_EQ(gpu.peakBw(), 10e9);
    EXPECT_DOUBLE_EQ(gpu.peakPerf(), 200e9);
    // CPU link (6) is below Bpeak (10), so it stays.
    EXPECT_DOUBLE_EQ(soc.ipRoofline(0).peakBw(), 6e9);
}

TEST(Usecase, TwoIpConvenience)
{
    Usecase u = Usecase::twoIp("mix", 0.75, 8.0, 0.1);
    EXPECT_EQ(u.numIps(), 2u);
    EXPECT_DOUBLE_EQ(u.fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(u.fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(u.intensity(0), 8.0);
    EXPECT_DOUBLE_EQ(u.intensity(1), 0.1);
}

TEST(Usecase, FractionsMustSumToOne)
{
    EXPECT_THROW(Usecase("bad", {IpWork{0.5, 1.0}, IpWork{0.4, 1.0}}),
                 FatalError);
    EXPECT_THROW(Usecase("bad", {IpWork{0.6, 1.0}, IpWork{0.6, 1.0}}),
                 FatalError);
}

TEST(Usecase, NegativeFractionRejected)
{
    EXPECT_THROW(Usecase("bad", {IpWork{-0.1, 1.0}, IpWork{1.1, 1.0}}),
                 FatalError);
}

TEST(Usecase, IntensityRequiredOnlyWhereWorked)
{
    // Zero-fraction entries may carry any intensity.
    EXPECT_NO_THROW(Usecase("ok", {IpWork{1.0, 2.0}, IpWork{0.0, 0.0}}));
    EXPECT_THROW(Usecase("bad", {IpWork{0.5, 0.0}, IpWork{0.5, 1.0}}),
                 FatalError);
}

TEST(Usecase, EmptyRejected)
{
    EXPECT_THROW(Usecase("bad", {}), FatalError);
}

TEST(Usecase, AverageIntensityPaperValue)
{
    // Appendix 6b: Iavg = 1/[(0.25/8) + (0.75/0.1)] = 0.13278.
    Usecase u = Usecase::twoIp("6b", 0.75, 8.0, 0.1);
    EXPECT_NEAR(u.averageIntensity(), 0.13278, 5e-6);
}

TEST(Usecase, AverageIntensitySkipsIdleIps)
{
    Usecase u("one-sided", {IpWork{1.0, 8.0}, IpWork{0.0, 123.0}});
    EXPECT_DOUBLE_EQ(u.averageIntensity(), 8.0);
}

TEST(Usecase, InfiniteIntensityMeansNoTraffic)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    Usecase u("compute-only", {IpWork{0.5, inf}, IpWork{0.5, 4.0}});
    // Only the second IP moves data: bytes/op = 0.5/4.
    EXPECT_DOUBLE_EQ(u.bytesPerOp(), 0.125);
    EXPECT_DOUBLE_EQ(u.averageIntensity(), 8.0);

    Usecase all_inf("pure-compute", {IpWork{1.0, inf}});
    EXPECT_DOUBLE_EQ(all_inf.bytesPerOp(), 0.0);
    EXPECT_TRUE(std::isinf(all_inf.averageIntensity()));
}

TEST(Usecase, WithWorkCopies)
{
    Usecase u = Usecase::twoIp("mix", 0.75, 8.0, 0.1);
    Usecase m = u.withWork(1, IpWork{0.75, 8.0});
    EXPECT_DOUBLE_EQ(m.intensity(1), 8.0);
    EXPECT_DOUBLE_EQ(u.intensity(1), 0.1);
    // Replacement must keep the sum valid.
    EXPECT_THROW(u.withWork(1, IpWork{0.9, 8.0}), FatalError);
}

TEST(Usecase, Renamed)
{
    Usecase u = Usecase::twoIp("a", 0.5, 1.0, 1.0).renamed("b");
    EXPECT_EQ(u.name(), "b");
}

} // namespace
} // namespace gables
