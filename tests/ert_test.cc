/**
 * @file
 * Tests for the ERT sweep driver and roofline fitter: fits on the
 * simulated chips must recover the configured rates, and the fitter
 * must behave sensibly on synthetic data.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ert/ert.h"
#include "ert/fitter.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/units.h"

namespace gables {
namespace {

TEST(ErtConfig, DefaultIntensityLadder)
{
    auto ladder = ErtConfig::defaultIntensities();
    ASSERT_EQ(ladder.size(), 17u);
    EXPECT_DOUBLE_EQ(ladder.front(), std::pow(2.0, -6));
    EXPECT_DOUBLE_EQ(ladder.back(), 1024.0);
    for (size_t i = 1; i < ladder.size(); ++i)
        EXPECT_DOUBLE_EQ(ladder[i], 2.0 * ladder[i - 1]);
}

TEST(ErtSweep, RecoversConfiguredRoofline)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    ErtConfig config;
    config.intensities = {0.0625, 0.25, 0.5, 2.0, 8.0, 64.0};
    auto samples = ErtSweep::run(*soc, "IP0", config);
    ASSERT_EQ(samples.size(), config.intensities.size());
    RooflineFit fit = RooflineFitter::fitDram(samples);
    EXPECT_NEAR(fit.peakOps, 10e9, 10e9 * 0.02);
    EXPECT_NEAR(fit.peakBw, 20e9, 20e9 * 0.02);
    EXPECT_NEAR(fit.ridge, 0.5, 0.02);
    EXPECT_LT(fit.maxRelResidual, 0.05);
}

TEST(ErtSweep, SamplesMonotoneInIntensityUntilPlateau)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();
    auto samples = ErtSweep::run(*soc, "IP0", config);
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i].opsRate,
                  samples[i - 1].opsRate * (1.0 - 1e-6));
}

TEST(ErtSweep, EmptyIntensitiesRejected)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    ErtConfig config;
    EXPECT_THROW(ErtSweep::run(*soc, "IP0", config), FatalError);
}

TEST(ErtSweep, WorkingSetSweepShowsCacheTiers)
{
    auto soc = SocCatalog::snapdragon835Sim();
    // CPU: 2 MiB L2 at 60 GB/s over a 15.1 GB/s link. Streaming
    // intensity so bandwidth dominates.
    auto samples = ErtSweep::workingSetSweep(
        *soc, "CPU", {256.0 * 1024, 1.0 * kMiB, 64.0 * kMiB,
                      256.0 * kMiB},
        0.01, 64e6);
    ASSERT_EQ(samples.size(), 4u);
    // In-cache sets run at ~60 GB/s; spilled sets near the link.
    EXPECT_NEAR(samples[0].byteRate, 60e9, 60e9 * 0.05);
    EXPECT_NEAR(samples[1].byteRate, 60e9, 60e9 * 0.05);
    EXPECT_LT(samples[3].byteRate, 18e9);
    EXPECT_GT(samples[3].byteRate, 14e9);
    // Bandwidth never increases as the set grows.
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_LE(samples[i].byteRate,
                  samples[i - 1].byteRate * (1.0 + 1e-6));
}

TEST(Fitter, TotalVersusDramRates)
{
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = {0.0625, 0.125, 64.0};
    config.workingSetBytes = 1.0 * kMiB; // fits the CPU L2
    config.totalBytes = 64e6;
    auto samples = ErtSweep::run(*soc, "CPU", config);
    RooflineFit total = RooflineFitter::fitTotal(samples);
    // In-cache streaming: the total-rate fit sees the 60 GB/s L2.
    EXPECT_NEAR(total.peakBw, 60e9, 60e9 * 0.05);
    // DRAM-rate fit would see ~0 traffic; it must reject that.
    EXPECT_THROW(RooflineFitter::fitDram(samples), FatalError);
}

TEST(Fitter, SyntheticSamplesExactFit)
{
    std::vector<ErtSample> samples;
    for (double i : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        ErtSample s;
        s.opsPerByte = i;
        s.opsRate = std::min(8e9, 4e9 * i);
        s.byteRate = s.opsRate / i;
        s.missByteRate = s.byteRate;
        samples.push_back(s);
    }
    RooflineFit fit = RooflineFitter::fitDram(samples);
    EXPECT_DOUBLE_EQ(fit.peakOps, 8e9);
    EXPECT_DOUBLE_EQ(fit.peakBw, 4e9);
    EXPECT_DOUBLE_EQ(fit.ridge, 2.0);
    EXPECT_NEAR(fit.maxRelResidual, 0.0, 1e-12);
}

TEST(Fitter, ResidualDetectsNonRooflineData)
{
    // A dip below the roofline at mid intensity shows up in the
    // residual.
    std::vector<ErtSample> samples;
    for (double i : {0.5, 1.0, 2.0, 8.0}) {
        ErtSample s;
        s.opsPerByte = i;
        s.opsRate = std::min(8e9, 4e9 * i);
        if (i == 2.0)
            s.opsRate *= 0.5; // anomaly
        s.missByteRate = s.opsRate / i;
        samples.push_back(s);
    }
    RooflineFit fit = RooflineFitter::fitDram(samples);
    EXPECT_GT(fit.maxRelResidual, 0.4);
}

TEST(Fitter, EmptyAndDegenerateInputsRejected)
{
    EXPECT_THROW(RooflineFitter::fitDram({}), FatalError);
    ErtSample zero;
    zero.opsPerByte = 1.0;
    EXPECT_THROW(RooflineFitter::fitDram({zero}), FatalError);
}

TEST(Fitter, RooflineObjectConstruction)
{
    RooflineFit fit;
    fit.peakOps = 7.5e9;
    fit.peakBw = 15.1e9;
    Roofline r = fit.roofline("CPU");
    EXPECT_EQ(r.name(), "CPU");
    EXPECT_DOUBLE_EQ(r.peakPerf(), 7.5e9);
    EXPECT_DOUBLE_EQ(r.peakBw(), 15.1e9);
}

} // namespace
} // namespace gables
