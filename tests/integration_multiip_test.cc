/**
 * @file
 * Multi-IP cross-validation: realize random Gables SoCs as
 * simulators (simFromSpec), run concurrent per-IP kernels matching a
 * random usecase's fractions and intensities, and check the central
 * claim — the analytic Pattainable is an upper bound the simulator
 * approaches.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/gables.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/rng.h"

namespace gables {
namespace {

/** Draw a random valid SoC with n IPs. */
SocSpec
randomSoc(Rng &rng, size_t n)
{
    std::vector<IpSpec> ips;
    for (size_t i = 0; i < n; ++i) {
        ips.push_back(
            IpSpec{"IP" + std::to_string(i),
                   i == 0 ? 1.0 : rng.logUniform(0.5, 30.0),
                   rng.logUniform(4e9, 40e9)});
    }
    return SocSpec("random", rng.logUniform(2e9, 40e9),
                   rng.logUniform(4e9, 40e9), std::move(ips));
}

/**
 * Run the usecase on the realized simulator: total work W split
 * fi*W at intensity Ii per engine, all concurrent.
 *
 * @return Aggregate ops/s (W / duration).
 */
double
simulate(const SocSpec &spec, const Usecase &usecase, double total_ops)
{
    auto soc = SocCatalog::simFromSpec(spec);
    std::vector<sim::SimSoc::JobSubmission> jobs;
    for (size_t i = 0; i < spec.numIps(); ++i) {
        double f = usecase.fraction(i);
        if (f == 0.0)
            continue;
        sim::KernelJob job;
        job.workingSetBytes = 64e6;
        job.totalBytes = f * total_ops / usecase.intensity(i);
        job.opsPerByte = usecase.intensity(i);
        jobs.push_back({spec.ip(i).name, job});
    }
    sim::SocRunStats stats = soc->run(jobs);
    return total_ops / stats.duration;
}

class MultiIpCrossCheck : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MultiIpCrossCheck, ModelBoundsSimulator)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 6; ++trial) {
        size_t n = static_cast<size_t>(rng.uniformInt(2, 4));
        SocSpec spec = randomSoc(rng, n);
        // Fractions bounded away from zero so no engine's job is
        // negligibly small (tiny jobs finish instantly and skew the
        // aggregate-rate comparison).
        std::vector<double> f = rng.simplex(n);
        for (double &v : f)
            v = 0.15 + 0.85 * v;
        double sum = 0.0;
        for (double v : f)
            sum += v;
        std::vector<IpWork> work(n);
        for (size_t i = 0; i < n; ++i)
            work[i] = IpWork{f[i] / sum, rng.logUniform(0.25, 16.0)};
        Usecase usecase("mc", std::move(work));

        double model =
            GablesModel::evaluate(spec, usecase).attainable;
        double sim_rate = simulate(spec, usecase, 256e6);

        // Upper-bound property (small numerical slack only).
        EXPECT_LE(sim_rate, model * 1.02)
            << "seed " << GetParam() << " trial " << trial;
        // And the bound is meaningful: the simulator achieves a
        // large fraction of it despite real contention and
        // straggling engines.
        EXPECT_GE(sim_rate, model * 0.55)
            << "seed " << GetParam() << " trial " << trial;
    }
}

TEST_P(MultiIpCrossCheck, BalancedSplitsComeClose)
{
    // When the work split matches each IP's capacity (the optimal-
    // split condition), every engine finishes together and the
    // simulator lands within a few percent of the bound.
    Rng rng(GetParam() ^ 0xABCD);
    for (int trial = 0; trial < 4; ++trial) {
        size_t n = static_cast<size_t>(rng.uniformInt(2, 3));
        SocSpec spec = randomSoc(rng, n);
        double intensity = rng.logUniform(16.0, 64.0);
        // High intensity: compute-bound; split by peak so all
        // engines finish together.
        double total_peak = 0.0;
        for (size_t i = 0; i < n; ++i)
            total_peak += spec.ipPeakPerf(i);
        std::vector<IpWork> work(n);
        for (size_t i = 0; i < n; ++i)
            work[i] =
                IpWork{spec.ipPeakPerf(i) / total_peak, intensity};
        Usecase usecase("balanced", std::move(work));

        double model =
            GablesModel::evaluate(spec, usecase).attainable;
        double sim_rate = simulate(spec, usecase, 256e6);
        EXPECT_LE(sim_rate, model * 1.02);
        EXPECT_GE(sim_rate, model * 0.90)
            << "seed " << GetParam() << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiIpCrossCheck,
                         ::testing::Values(11u, 23u, 47u));

TEST(SimFromSpec, EngineNamesAndRatesMatchSpec)
{
    SocSpec spec = SocCatalog::paperTwoIp();
    auto soc = SocCatalog::simFromSpec(spec);
    sim::KernelJob job;
    job.workingSetBytes = 8e6;
    job.totalBytes = 8e6;
    job.opsPerByte = 1000.0; // compute bound
    sim::SocRunStats stats = soc->run({{"GPU", job}});
    // The GPU engine computes at A1 * Ppeak = 200 Gops/s.
    EXPECT_NEAR(stats.engine("GPU").achievedOpsRate(), 200e9,
                200e9 * 0.02);
}

TEST(SimFromSpec, StreamRateMatchesLink)
{
    SocSpec spec = SocCatalog::paperTwoIp();
    auto soc = SocCatalog::simFromSpec(spec);
    sim::KernelJob job;
    job.workingSetBytes = 64e6;
    job.totalBytes = 64e6;
    job.opsPerByte = 0.01; // bandwidth bound
    sim::SocRunStats stats = soc->run({{"CPU", job}});
    // B0 = 6 GB/s is below Bpeak = 10 GB/s, so the link binds.
    EXPECT_NEAR(stats.engine("CPU").achievedByteRate(), 6e9,
                6e9 * 0.03);
}

} // namespace
} // namespace gables
