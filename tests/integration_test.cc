/**
 * @file
 * Cross-cutting integration tests:
 *
 *  - the Gables model is a (tight-ish) upper bound on the simulator
 *    for isolated runs, across random parameters;
 *  - the Figure 8 mixing experiment on the simulated Snapdragon
 *    reproduces the paper's shape: low-intensity offload slows the
 *    system down, high-intensity offload approaches the GPU's full
 *    acceleration;
 *  - model + plots + catalog compose end-to-end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/sweep.h"
#include "core/gables.h"
#include "ert/ert.h"
#include "ert/fitter.h"
#include "plot/roofline_plot.h"
#include "plot/series_plot.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/rng.h"

namespace gables {
namespace {

/** Run the simulated kernel on a single-engine SoC. */
double
simulatedOpsRate(double ops_per_sec, double link_bw, double dram_bw,
                 double intensity)
{
    auto soc = SocCatalog::simpleSim(ops_per_sec, link_bw, dram_bw);
    sim::KernelJob job;
    job.workingSetBytes = 64e6;
    job.totalBytes = 64e6;
    job.opsPerByte = intensity;
    sim::SocRunStats stats = soc->run({{"IP0", job}});
    return stats.engine("IP0").achievedOpsRate();
}

TEST(ModelVsSim, ModelUpperBoundsSimulatorWithinTolerance)
{
    Rng rng(777);
    for (int trial = 0; trial < 12; ++trial) {
        double peak = rng.logUniform(1e9, 100e9);
        double link = rng.logUniform(2e9, 50e9);
        double dram = rng.logUniform(2e9, 50e9);
        double intensity = rng.logUniform(0.05, 64.0);

        SocSpec spec("s", peak, dram,
                     {IpSpec{"IP0", 1.0, link}});
        Usecase u("u", {IpWork{1.0, intensity}});
        double model = GablesModel::evaluate(spec, u).attainable;
        double sim = simulatedOpsRate(peak, link, dram, intensity);

        // The model is an upper bound (up to small simulation
        // start-up effects) and the simulator comes close to it.
        EXPECT_LE(sim, model * 1.02)
            << "trial " << trial << " peak=" << peak
            << " link=" << link << " dram=" << dram
            << " I=" << intensity;
        EXPECT_GE(sim, model * 0.90)
            << "trial " << trial << " peak=" << peak
            << " link=" << link << " dram=" << dram
            << " I=" << intensity;
    }
}

/** Run the Figure 8 mixing experiment point on the simulated chip. */
double
mixingPoint(sim::SimSoc &soc, double f, double intensity)
{
    const double total = 64e6; // total ops for the whole usecase
    std::vector<sim::SimSoc::JobSubmission> jobs;
    if (f < 1.0) {
        sim::KernelJob cpu;
        cpu.workingSetBytes = 64e6;
        cpu.totalBytes = (1.0 - f) * total / intensity;
        cpu.opsPerByte = intensity;
        jobs.push_back({"CPU", cpu});
    }
    if (f > 0.0) {
        sim::KernelJob gpu;
        gpu.workingSetBytes = 64e6;
        gpu.totalBytes = f * total / intensity;
        gpu.opsPerByte = intensity;
        gpu.coordinationTime = 1e-6; // offload handoff via the CPU
        jobs.push_back({"GPU", gpu});
    }
    sim::SocRunStats stats = soc.run(jobs);
    return total / stats.duration;
}

TEST(Figure8Shape, LowIntensityOffloadSlowsDown)
{
    auto soc = SocCatalog::snapdragon835Sim();
    double base = mixingPoint(*soc, 0.0, 1.0);
    double offloaded = mixingPoint(*soc, 1.0, 1.0);
    // The paper: low operational intensity work should not be
    // offloaded — performance drops (though not as catastrophically
    // as Figure 6b).
    EXPECT_LT(offloaded, base);
    EXPECT_GT(offloaded, base * 0.2);
}

TEST(Figure8Shape, HighIntensityOffloadApproachesAcceleration)
{
    auto soc = SocCatalog::snapdragon835Sim();
    double base = mixingPoint(*soc, 0.0, 1024.0);
    double offloaded = mixingPoint(*soc, 1.0, 1024.0);
    double speedup = offloaded / base;
    // The paper reports 39.4x at I = 1024 against a ~46.6x ceiling.
    EXPECT_GT(speedup, 30.0);
    EXPECT_LT(speedup, 48.0);
}

TEST(Figure8Shape, SpeedupGrowsWithIntensity)
{
    auto soc = SocCatalog::snapdragon835Sim();
    double prev = 0.0;
    for (double intensity : {1.0, 16.0, 256.0}) {
        double s = mixingPoint(*soc, 1.0, intensity) /
                   mixingPoint(*soc, 0.0, intensity);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST(ModelVsSim, MixingModelPredictsSimDirection)
{
    // The base Gables model (no coordination) must agree with the
    // simulator on WHERE offload helps: at high intensity both call
    // offload a win; the simulator's low-I slowdown comes from the
    // coordination bottleneck the base model deliberately omits.
    SocSpec spec = SocCatalog::snapdragon835();
    auto soc = SocCatalog::snapdragon835Sim();

    Series model_series = Sweep::mixing(spec, 1024.0, 1024.0,
                                        {0.0, 1.0});
    double sim_speedup = mixingPoint(*soc, 1.0, 1024.0) /
                         mixingPoint(*soc, 0.0, 1024.0);
    EXPECT_GT(model_series.y.back(), 1.0);
    EXPECT_GT(sim_speedup, 1.0);
    EXPECT_NEAR(model_series.y.back(), sim_speedup,
                model_series.y.back() * 0.25);
}

TEST(EndToEnd, Figure6PlotsRenderFromCatalog)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    struct Case {
        const char *name;
        SocSpec spec;
        Usecase usecase;
    };
    std::vector<Case> cases = {
        {"6a", soc, Usecase::twoIp("6a", 0.0, 8.0, 0.1)},
        {"6b", soc, Usecase::twoIp("6b", 0.75, 8.0, 0.1)},
        {"6c", soc.withBpeak(30e9), Usecase::twoIp("6c", 0.75, 8.0,
                                                   0.1)},
        {"6d", soc.withBpeak(20e9), Usecase::twoIp("6d", 0.75, 8.0,
                                                   8.0)},
    };
    for (const Case &c : cases) {
        RooflinePlot plot(c.name, 0.01, 100.0);
        plot.addGables(c.spec, c.usecase);
        std::string svg = plot.renderSvg();
        EXPECT_GT(svg.size(), 500u) << c.name;
        EXPECT_NE(svg.find("memory"), std::string::npos) << c.name;
    }
}

TEST(EndToEnd, ErtToRooflineToPlot)
{
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = {0.0625, 0.5, 4.0, 64.0};
    config.workingSetBytes = 64e6;
    config.totalBytes = 64e6;
    auto samples = ErtSweep::run(*soc, "CPU", config);
    RooflineFit fit = RooflineFitter::fitDram(samples);
    RooflinePlot plot("Figure 7a (sim)", 0.01, 100.0);
    plot.addRoofline(fit.roofline("CPU"));
    std::string ascii = plot.renderAscii();
    EXPECT_NE(ascii.find("CPU"), std::string::npos);
}

} // namespace
} // namespace gables
