/**
 * @file
 * Locale-robustness regression tests: numeric parsing and JSON
 * formatting must be byte-identical under LC_NUMERIC=de_DE.UTF-8
 * (decimal comma), and the full replay corpus must still replay
 * clean in-process with the German locale active. Skips gracefully
 * when the host has no de_DE locale (CI generates it).
 *
 * GABLES_CORPUS_DIR is injected by tests/CMakeLists.txt.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <sstream>
#include <string>

#include "cli/driver.h"
#include "replay/replayer.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/parse.h"

namespace {

using namespace gables;

/** Activate a decimal-comma locale for the test, restore after. */
class GermanLocaleTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const char *current = std::setlocale(LC_NUMERIC, nullptr);
        saved_ = current ? current : "C";
        static const char *kNames[] = {"de_DE.UTF-8", "de_DE.utf8",
                                       "de_DE"};
        bool active = false;
        for (const char *name : kNames)
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                active = true;
                break;
            }
        if (!active)
            GTEST_SKIP()
                << "no de_DE locale on this host (CI generates it)";
        if (std::string(std::localeconv()->decimal_point) != ",") {
            std::setlocale(LC_NUMERIC, saved_.c_str());
            GTEST_SKIP() << "de_DE locale has no decimal comma";
        }
    }

    void TearDown() override
    {
        std::setlocale(LC_NUMERIC, saved_.c_str());
    }

  private:
    std::string saved_;
};

TEST_F(GermanLocaleTest, LocaleDependentFormattingWouldBreak)
{
    // Demonstrate the hazard this suite guards against: the C
    // library's locale-aware formatter emits a decimal comma here,
    // which is invalid JSON. Everything below must not do this.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
    EXPECT_STREQ(buf, "1,5");
}

TEST_F(GermanLocaleTest, StrictParsingIgnoresTheLocale)
{
    EXPECT_EQ(parseDoubleStrict("1.5"), 1.5);
    EXPECT_EQ(parseDoubleStrict("-2.25e3"), -2250.0);
    EXPECT_EQ(parseDoubleStrict("40"), 40.0);
    // A decimal comma is still rejected — the config grammar is
    // locale-independent in both directions.
    EXPECT_THROW(parseDoubleStrict("1,5"), FatalError);

    double value = 0.0;
    std::string rest;
    ASSERT_TRUE(parseDoublePrefix("24.4 GB/s", &value, &rest));
    EXPECT_EQ(value, 24.4);
    EXPECT_EQ(rest, " GB/s");
}

TEST_F(GermanLocaleTest, JsonWriterEmitsPointDecimal)
{
    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginArray();
    json.value(1.5);
    json.value(0.1);
    json.value(1.328e9);
    json.value(1e-300);
    json.endArray();
    EXPECT_EQ(out.str(), "[1.5,0.1,1328000000,1e-300]");

    // And the documents it produces still round-trip bit-exactly.
    JsonValue parsed = parseJson(out.str());
    EXPECT_EQ(parsed.at(0).asNumber(), 1.5);
    EXPECT_EQ(parsed.at(1).asNumber(), 0.1);
    EXPECT_EQ(parsed.at(3).asNumber(), 1e-300);
}

TEST_F(GermanLocaleTest, CorpusReplaysByteIdentically)
{
    std::vector<std::string> bundles =
        replay::listBundles(GABLES_CORPUS_DIR);
    ASSERT_FALSE(bundles.empty())
        << "no corpus bundles at " << GABLES_CORPUS_DIR;
    replay::CommandRunner runner =
        [](const std::vector<std::string> &argv) {
            return cli::runCommand(argv);
        };
    for (const std::string &path : bundles) {
        replay::ReplayOutcome outcome =
            replay::replayBundle(path, runner, {});
        EXPECT_TRUE(outcome.matched())
            << path << ": " << outcome.status << "\n"
            << outcome.detail;
    }
}

} // namespace
