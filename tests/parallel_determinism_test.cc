/**
 * @file
 * The determinism contract of the parallel evaluation engine: for
 * sweeps, the design explorer, and ERT trial batches (plus their
 * fitted rooflines and RunReport JSON), running with --jobs 8 must
 * produce byte-identical output to --jobs 1 — including which
 * exception surfaces when a grid point throws mid-grid. Doubles are
 * compared bit-for-bit via memcmp, not with a tolerance.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "analysis/explorer.h"
#include "analysis/sweep.h"
#include "ert/ert.h"
#include "ert/fitter.h"
#include "soc/catalog.h"
#include "telemetry/report.h"
#include "telemetry/stats.h"
#include "util/logging.h"

namespace gables {
namespace {

/** Bit-for-bit equality of two double vectors. */
bool
bitIdentical(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(double)) == 0);
}

std::vector<double>
linspace(double lo, double hi, size_t n)
{
    std::vector<double> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(n - 1));
    return out;
}

TEST(ParallelDeterminism, MixingSweepByteIdentical)
{
    SocSpec soc = SocCatalog::snapdragon835();
    std::vector<double> fractions = linspace(0.0, 1.0, 97);
    Series serial = Sweep::mixing(soc, 8.0, 0.5, fractions, true, 1);
    Series parallel8 =
        Sweep::mixing(soc, 8.0, 0.5, fractions, true, 8);
    EXPECT_EQ(serial.label, parallel8.label);
    EXPECT_TRUE(bitIdentical(serial.x, parallel8.x));
    EXPECT_TRUE(bitIdentical(serial.y, parallel8.y));
}

TEST(ParallelDeterminism, KnobSweepsByteIdentical)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 0.1);
    std::vector<double> bw = linspace(1e9, 60e9, 64);
    EXPECT_TRUE(bitIdentical(Sweep::bpeak(soc, u, bw, 1).y,
                             Sweep::bpeak(soc, u, bw, 8).y));
    std::vector<double> intens = linspace(0.01, 64.0, 64);
    EXPECT_TRUE(bitIdentical(Sweep::intensity(soc, u, 1, intens, 1).y,
                             Sweep::intensity(soc, u, 1, intens, 8).y));
    std::vector<double> accel = linspace(1.0, 40.0, 64);
    EXPECT_TRUE(
        bitIdentical(Sweep::acceleration(soc, u, 1, accel, 1).y,
                     Sweep::acceleration(soc, u, 1, accel, 8).y));
    EXPECT_TRUE(bitIdentical(Sweep::ipBandwidth(soc, u, 1, bw, 1).y,
                             Sweep::ipBandwidth(soc, u, 1, bw, 8).y));
}

TEST(ParallelDeterminism, ExplorerByteIdentical)
{
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase good = Usecase::twoIp("good", 0.75, 8.0, 8.0);
    Usecase bad = Usecase::twoIp("bad", 0.75, 8.0, 0.1);
    CostModel cost;
    cost.costPerAcceleration = 1.0;
    cost.costPerBpeak = 1e-9;
    DesignExplorer ex(base, {good, bad}, cost);
    ex.sweepBpeak(linspace(5e9, 60e9, 12));
    ex.sweepAcceleration(1, linspace(1.0, 25.0, 7));
    ex.sweepIpBandwidth(1, linspace(2e9, 40e9, 5));

    auto serial = ex.explore(1);
    auto parallel8 = ex.explore(8);
    ASSERT_EQ(serial.size(), parallel8.size());
    ASSERT_EQ(serial.size(), ex.gridSize());
    for (size_t i = 0; i < serial.size(); ++i) {
        const Candidate &a = serial[i];
        const Candidate &b = parallel8[i];
        EXPECT_TRUE(bitIdentical({a.minPerf, a.cost},
                                 {b.minPerf, b.cost}))
            << "candidate " << i;
        EXPECT_TRUE(bitIdentical(a.perUsecase, b.perUsecase))
            << "candidate " << i;
        EXPECT_EQ(a.pareto, b.pareto) << "candidate " << i;
        EXPECT_TRUE(bitIdentical(
            {a.soc.bpeak(), a.soc.ip(1).acceleration,
             a.soc.ip(1).bandwidth},
            {b.soc.bpeak(), b.soc.ip(1).acceleration,
             b.soc.ip(1).bandwidth}))
            << "candidate " << i;
    }
}

TEST(ParallelDeterminism, ErtTrialsAndFitByteIdentical)
{
    ErtSweep::SocFactory make_soc = [] {
        return SocCatalog::snapdragon835Sim();
    };
    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();

    auto serial = ErtSweep::run(make_soc, "GPU", config, 1);
    auto parallel8 = ErtSweep::run(make_soc, "GPU", config, 8);
    ASSERT_EQ(serial.size(), parallel8.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        const ErtSample &a = serial[i];
        const ErtSample &b = parallel8[i];
        EXPECT_TRUE(bitIdentical(
            {a.opsPerByte, a.workingSetBytes, a.opsRate, a.byteRate,
             a.missByteRate},
            {b.opsPerByte, b.workingSetBytes, b.opsRate, b.byteRate,
             b.missByteRate}))
            << "sample " << i;
    }

    // The parallel factory path must also match the legacy
    // shared-simulator serial path, and the fits must agree.
    auto shared_soc = SocCatalog::snapdragon835Sim();
    auto legacy = ErtSweep::run(*shared_soc, "GPU", config);
    ASSERT_EQ(legacy.size(), parallel8.size());
    for (size_t i = 0; i < legacy.size(); ++i)
        EXPECT_TRUE(bitIdentical({legacy[i].opsRate,
                                  legacy[i].missByteRate},
                                 {parallel8[i].opsRate,
                                  parallel8[i].missByteRate}));

    RooflineFit fit1 = RooflineFitter::fitDram(serial);
    RooflineFit fit8 = RooflineFitter::fitDram(parallel8);
    EXPECT_TRUE(bitIdentical(
        {fit1.peakOps, fit1.peakBw, fit1.ridge, fit1.maxRelResidual},
        {fit8.peakOps, fit8.peakBw, fit8.ridge,
         fit8.maxRelResidual}));
}

TEST(ParallelDeterminism, ErtWorkingSetSweepByteIdentical)
{
    ErtSweep::SocFactory make_soc = [] {
        return SocCatalog::snapdragon835Sim();
    };
    std::vector<double> sets;
    for (double s = 64e3; s <= 256e6; s *= 4.0)
        sets.push_back(s);
    auto serial =
        ErtSweep::workingSetSweep(make_soc, "CPU", sets, 4.0,
                                  64e6, 1);
    auto parallel8 =
        ErtSweep::workingSetSweep(make_soc, "CPU", sets, 4.0,
                                  64e6, 8);
    ASSERT_EQ(serial.size(), parallel8.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(bitIdentical(
            {serial[i].opsRate, serial[i].byteRate,
             serial[i].missByteRate},
            {parallel8[i].opsRate, parallel8[i].byteRate,
             parallel8[i].missByteRate}))
            << "sample " << i;
}

/** Render the sweep RunReport exactly as `gables sweep --metrics`. */
std::string
sweepReportJson(int jobs)
{
    SocSpec soc = SocCatalog::snapdragon835();
    std::vector<double> fractions = linspace(0.0, 1.0, 33);
    parallel::ForStats pstats;
    Series series =
        Sweep::mixing(soc, 1.0, 1.0, fractions, true, jobs, &pstats);

    telemetry::StatsRegistry reg;
    telemetry::TimeSeries &ts = reg.timeSeries(
        "mixing.normalized_perf",
        "normalized attainable vs fraction f at IP[1]");
    for (size_t i = 0; i < series.x.size(); ++i)
        ts.sample(series.x[i], series.y[i]);
    reg.counter("parallel.workers", "worker-pool size")
        .add(pstats.workers);
    telemetry::Distribution &busy =
        reg.distribution("parallel.worker_busy_s", "busy seconds");
    for (double b : pstats.busySeconds)
        busy.sample(b);

    telemetry::RunReport report("gables sweep", soc.name());
    report.addConfig("soc", "sd835");
    report.addConfig("i0", 1.0);
    report.addConfig("i1", 1.0);
    report.addConfig("points", static_cast<long>(fractions.size()));
    report.addConfig("jobs", static_cast<long>(jobs));
    report.setRegistry(&reg);
    std::ostringstream out;
    report.write(out);
    return out.str();
}

/**
 * Drop the lines the contract excludes: the "jobs" config echo and
 * the "parallel.*" stats (worker count and wall-clock busy time).
 */
std::string
stripJobsFields(const std::string &json)
{
    std::istringstream in(json);
    std::ostringstream out;
    std::string line;
    bool skipping = false;
    while (std::getline(in, line)) {
        if (line.find("\"parallel.") != std::string::npos)
            skipping = true; // stat object spans several lines
        if (!skipping && line.find("\"jobs\"") == std::string::npos)
            out << line << '\n';
        if (skipping && line.find('}') != std::string::npos)
            skipping = false;
    }
    return out.str();
}

TEST(ParallelDeterminism, RunReportIdenticalModuloJobsFields)
{
    std::string report1 = sweepReportJson(1);
    std::string report8 = sweepReportJson(8);
    // The raw reports differ (jobs echo, busy times)...
    EXPECT_NE(report1, report8);
    // ...but stripped of the jobs fields they are byte-identical.
    EXPECT_EQ(stripJobsFields(report1), stripJobsFields(report8));
    // And the stripping really removed the excluded fields.
    EXPECT_EQ(stripJobsFields(report1).find("parallel."),
              std::string::npos);
}

TEST(ParallelDeterminism, ThrowingGridPointSurfacesSameError)
{
    // A grid point that throws mid-sweep must surface the same
    // exception for any worker count: the lowest failing x.
    std::vector<double> xs = linspace(0.0, 1.0, 101);
    auto evaluate = [](double x) {
        if (x > 0.6495) // indices 66..100 all fail
            throw FatalError("candidate rejected at x=" +
                             std::to_string(x));
        return x * 2.0;
    };
    std::string serial_msg, parallel_msg;
    try {
        Sweep::custom("throwing", xs, evaluate, 1);
    } catch (const FatalError &err) {
        serial_msg = err.what();
    }
    try {
        Sweep::custom("throwing", xs, evaluate, 8);
    } catch (const FatalError &err) {
        parallel_msg = err.what();
    }
    ASSERT_FALSE(serial_msg.empty());
    EXPECT_EQ(serial_msg, parallel_msg);
}

TEST(ParallelDeterminism, ThrowingExplorerCandidateSameError)
{
    // An invalid design mid-grid (negative Bpeak rejected by the
    // spec validator) surfaces the same FatalError either way.
    SocSpec base = SocCatalog::paperTwoIp();
    Usecase u = Usecase::twoIp("u", 0.75, 8.0, 8.0);
    CostModel cost;
    DesignExplorer ex(base, {u}, cost);
    std::vector<double> bpeaks = linspace(5e9, 40e9, 24);
    bpeaks[13] = -1.0; // poison one grid point
    ex.sweepBpeak(bpeaks);

    std::string serial_msg, parallel_msg;
    try {
        ex.explore(1);
    } catch (const FatalError &err) {
        serial_msg = err.what();
    }
    try {
        ex.explore(8);
    } catch (const FatalError &err) {
        parallel_msg = err.what();
    }
    ASSERT_FALSE(serial_msg.empty());
    EXPECT_EQ(serial_msg, parallel_msg);
}

} // namespace
} // namespace gables
