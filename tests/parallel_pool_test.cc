/**
 * @file
 * Unit tests for the worker-pool / parallel_for layer: degenerate
 * ranges, ranges smaller than the pool, exception propagation from
 * workers (lowest failing index wins, as in a serial loop), nested
 * loops, and the guarantee that jobs = 1 never spawns a thread.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace gables {
namespace {

parallel::ForOptions
withJobs(int jobs)
{
    parallel::ForOptions opts;
    opts.jobs = jobs;
    return opts;
}

TEST(ParallelFor, DefaultJobsIsPositive)
{
    EXPECT_GE(parallel::defaultJobs(), 1);
}

TEST(ParallelFor, EmptyRangeNeverCallsBody)
{
    std::atomic<int> calls{0};
    parallel::ForStats stats = parallel::parallelFor(
        0, [&](size_t) { ++calls; }, withJobs(8));
    EXPECT_EQ(calls.load(), 0);
    EXPECT_EQ(stats.workers, 1); // nothing to do => no pool
    ASSERT_EQ(stats.busySeconds.size(), 1u);
}

TEST(ParallelFor, RangeSmallerThanWorkerCount)
{
    std::vector<int> hits(3, 0);
    parallel::ForStats stats = parallel::parallelFor(
        hits.size(), [&](size_t i) { hits[i] += 1; }, withJobs(8));
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
    // The pool never allocates more workers than indices.
    EXPECT_LE(stats.workers, 3);
    EXPECT_EQ(stats.busySeconds.size(),
              static_cast<size_t>(stats.workers));
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce)
{
    const size_t n = 1000;
    std::vector<int> counts(n, 0);
    parallel::parallelFor(
        n, [&](size_t i) { counts[i] += 1; }, withJobs(8));
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0),
              static_cast<int>(n));
    EXPECT_EQ(*std::min_element(counts.begin(), counts.end()), 1);
    EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), 1);
}

TEST(ParallelFor, ExceptionFromWorkerPropagates)
{
    EXPECT_THROW(parallel::parallelFor(
                     100,
                     [&](size_t i) {
                         if (i == 41)
                             fatal("boom at 41");
                     },
                     withJobs(4)),
                 FatalError);
}

TEST(ParallelFor, LowestFailingIndexWinsLikeSerial)
{
    // Several indices fail; the surfaced exception must be the one a
    // serial left-to-right loop would have thrown, for any job count.
    auto body = [](size_t i) {
        if (i >= 17)
            fatal("failed at index " + std::to_string(i));
    };
    for (int jobs : {1, 2, 8}) {
        try {
            parallel::parallelFor(200, body, withJobs(jobs));
            FAIL() << "expected FatalError with jobs=" << jobs;
        } catch (const FatalError &err) {
            EXPECT_STREQ(err.what(), "failed at index 17")
                << "jobs=" << jobs;
        }
    }
}

TEST(ParallelFor, NestedLoopRunsInlineWithoutDeadlock)
{
    const size_t outer = 8, inner = 64;
    std::vector<std::vector<double>> grid(outer,
                                          std::vector<double>(inner));
    parallel::parallelFor(
        outer,
        [&](size_t i) {
            parallel::ForStats stats = parallel::parallelFor(
                inner,
                [&](size_t j) {
                    grid[i][j] = static_cast<double>(i * inner + j);
                },
                withJobs(4));
            // The inner loop degrades to the calling worker alone.
            EXPECT_EQ(stats.workers, 1);
        },
        withJobs(4));
    for (size_t i = 0; i < outer; ++i)
        for (size_t j = 0; j < inner; ++j)
            EXPECT_EQ(grid[i][j], static_cast<double>(i * inner + j));
}

TEST(ParallelFor, SingleJobNeverSpawnsThreads)
{
    std::set<std::thread::id> ids;
    parallel::ForStats stats = parallel::parallelFor(
        64, [&](size_t) { ids.insert(std::this_thread::get_id()); },
        withJobs(1));
    EXPECT_EQ(stats.workers, 1);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ParallelFor, WorkerIndexIsStableAndInRange)
{
    const size_t n = 512;
    std::vector<int> worker_of(n, -1);
    parallel::ForStats stats = parallel::parallelFor(
        n, [&](size_t i, int worker) { worker_of[i] = worker; },
        withJobs(4));
    for (size_t i = 0; i < n; ++i) {
        EXPECT_GE(worker_of[i], 0);
        EXPECT_LT(worker_of[i], stats.workers);
    }
}

TEST(ParallelFor, RejectsNegativeJobs)
{
    EXPECT_THROW(parallel::parallelFor(
                     4, [](size_t) {}, withJobs(-1)),
                 FatalError);
}

TEST(ThreadPool, ReusableAcrossLoops)
{
    parallel::ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4);
    std::vector<int> a(100, 0), b(50, 0);
    pool.forEach(a.size(), [&](size_t i, int) { a[i] = 1; });
    pool.forEach(b.size(), [&](size_t i, int) { b[i] = 2; });
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 100);
    EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), 100);
    EXPECT_EQ(pool.busySeconds().size(), 4u);
}

TEST(ThreadPool, EmptyAndSingleIndexRanges)
{
    parallel::ThreadPool pool(4);
    int calls = 0;
    pool.forEach(0, [&](size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.forEach(1, [&](size_t, int) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SurvivesExceptionAndKeepsWorking)
{
    parallel::ThreadPool pool(4);
    EXPECT_THROW(
        pool.forEach(32, [&](size_t i, int) {
            if (i == 3)
                fatal("worker failure");
        }),
        FatalError);
    // The pool is still usable after a failed loop.
    std::vector<int> ok(64, 0);
    pool.forEach(ok.size(), [&](size_t i, int) { ok[i] = 1; });
    EXPECT_EQ(std::accumulate(ok.begin(), ok.end(), 0), 64);
}

} // namespace
} // namespace gables
