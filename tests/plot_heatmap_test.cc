/**
 * @file
 * Tests for the heatmap chart, including building the Figure 8
 * mixing map from the model.
 */

#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "plot/heatmap.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/strings.h"

namespace gables {
namespace {

HeatmapPlot
smallMap()
{
    HeatmapPlot map("test", "x", "y");
    map.setGrid({"a", "b"}, {"lo", "hi"},
                {{1.0, 2.0}, {3.0, 4.0}});
    return map;
}

TEST(Heatmap, SvgContainsCellsAndLabels)
{
    std::string svg = smallMap().renderSvg();
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("test"), std::string::npos);
    EXPECT_NE(svg.find(">lo</text>"), std::string::npos);
    EXPECT_NE(svg.find(">4</text>"), std::string::npos);
    // 4 cells -> 4 filled rects beyond the background.
    size_t rects = 0, pos = 0;
    while ((pos = svg.find("<rect", pos)) != std::string::npos) {
        ++rects;
        ++pos;
    }
    EXPECT_GE(rects, 5u);
}

TEST(Heatmap, AsciiShadesMonotone)
{
    std::string ascii = smallMap().renderAscii();
    EXPECT_NE(ascii.find("test"), std::string::npos);
    // Lowest cell renders lighter than the highest.
    EXPECT_NE(ascii.find(' '), std::string::npos);
    EXPECT_NE(ascii.find('@'), std::string::npos);
}

TEST(Heatmap, GridValidation)
{
    HeatmapPlot map("bad", "x", "y");
    EXPECT_THROW(map.setGrid({}, {"r"}, {{1.0}}), FatalError);
    EXPECT_THROW(map.setGrid({"c"}, {"r"}, {{1.0, 2.0}}),
                 FatalError);
    EXPECT_THROW(map.setGrid({"c"}, {"r1", "r2"}, {{1.0}}),
                 FatalError);
    EXPECT_THROW(map.renderSvg(), FatalError);
    EXPECT_THROW(map.renderAscii(), FatalError);
}

TEST(Heatmap, LogScaleHandlesWideRange)
{
    HeatmapPlot map("wide", "x", "y");
    map.setGrid({"a", "b", "c"}, {"r"}, {{0.5, 10.0, 1000.0}});
    map.setLogScale(true);
    EXPECT_NO_THROW(map.renderSvg());
    EXPECT_NO_THROW(map.renderAscii());
}

TEST(Heatmap, UniformGridDoesNotDivideByZero)
{
    HeatmapPlot map("flat", "x", "y");
    map.setGrid({"a", "b"}, {"r"}, {{5.0, 5.0}});
    EXPECT_NO_THROW(map.renderSvg());
    map.setLogScale(true);
    EXPECT_NO_THROW(map.renderAscii());
}

TEST(Heatmap, MixingMapFromModel)
{
    // Build the Figure 8 family as one map: rows = intensity, cols
    // = fraction; values = normalized performance.
    SocSpec soc = SocCatalog::snapdragon835();
    std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
    std::vector<double> intensities = {1.0, 16.0, 256.0};

    std::vector<std::string> x_ticks, y_ticks;
    for (double f : fractions)
        x_ticks.push_back(formatDouble(f, 2));
    std::vector<std::vector<double>> grid;
    for (double i : intensities) {
        y_ticks.push_back("I=" + formatDouble(i, 0));
        grid.push_back(Sweep::mixing(soc, i, i, fractions).y);
    }
    HeatmapPlot map("mixing map", "fraction f at GPU", "intensity");
    map.setGrid(x_ticks, y_ticks, grid);
    map.setLogScale(true);
    std::string svg = map.renderSvg();
    EXPECT_NE(svg.find("mixing map"), std::string::npos);
    // The top-right cell (high I, f=1) is the chip's acceleration.
    EXPECT_NE(svg.find("46.6"), std::string::npos);
}

} // namespace
} // namespace gables
