/**
 * @file
 * Tests for the plotting stack: SVG/ASCII backends, axes, and the
 * roofline/series chart builders.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "analysis/sweep.h"
#include "plot/ascii.h"
#include "plot/axes.h"
#include "plot/roofline_plot.h"
#include "plot/series_plot.h"
#include "plot/svg.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace {

TEST(Svg, DocumentStructure)
{
    SvgCanvas svg(200, 100);
    svg.line(0, 0, 10, 10);
    svg.circle(5, 5, 2);
    svg.text(1, 1, "hello");
    std::string doc = svg.render();
    EXPECT_NE(doc.find("<svg"), std::string::npos);
    EXPECT_NE(doc.find("</svg>"), std::string::npos);
    EXPECT_NE(doc.find("<line"), std::string::npos);
    EXPECT_NE(doc.find("<circle"), std::string::npos);
    EXPECT_NE(doc.find(">hello</text>"), std::string::npos);
    EXPECT_NE(doc.find("width=\"200\""), std::string::npos);
}

TEST(Svg, EscapesTextContent)
{
    SvgCanvas svg(100, 100);
    svg.text(0, 0, "a < b & c > \"d\"");
    std::string doc = svg.render();
    EXPECT_NE(doc.find("a &lt; b &amp; c &gt; &quot;d&quot;"),
              std::string::npos);
}

TEST(Svg, PolylineAndDashes)
{
    SvgCanvas svg(100, 100);
    svg.polyline({{0, 0}, {10, 10}, {20, 5}}, "#ff0000", 2.0, true);
    std::string doc = svg.render();
    EXPECT_NE(doc.find("<polyline"), std::string::npos);
    EXPECT_NE(doc.find("stroke-dasharray"), std::string::npos);
    EXPECT_NE(doc.find("0,0 10,10 20,5"), std::string::npos);
}

TEST(Svg, SaveWritesFile)
{
    SvgCanvas svg(50, 50);
    svg.rect(1, 1, 10, 10);
    std::string path = ::testing::TempDir() + "gables_test.svg";
    svg.save(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("<?xml"), std::string::npos);
}

TEST(Svg, RejectsBadDimensions)
{
    EXPECT_THROW(SvgCanvas(0, 10), FatalError);
}

TEST(Ascii, PutAndRender)
{
    AsciiCanvas c(4, 2);
    c.put(0, 0, 'a');
    c.put(3, 1, 'z');
    EXPECT_EQ(c.render(), "a   \n   z\n");
}

TEST(Ascii, OutOfRangeIgnored)
{
    AsciiCanvas c(2, 2);
    c.put(-1, 0, 'x');
    c.put(0, 5, 'x');
    c.put(5, 0, 'x');
    EXPECT_EQ(c.render(), "  \n  \n");
}

TEST(Ascii, WriteClips)
{
    AsciiCanvas c(5, 1);
    c.write(3, 0, "abc");
    EXPECT_EQ(c.render(), "   ab\n");
}

TEST(Ascii, LineDrawsDiagonal)
{
    AsciiCanvas c(4, 4);
    c.line(0, 0, 3, 3, '*');
    std::string out = c.render();
    EXPECT_EQ(out[0], '*');            // (0,0)
    EXPECT_EQ(out[5 * 1 + 1], '*');    // (1,1), rows are 5 chars
    EXPECT_EQ(out[5 * 3 + 3], '*');    // (3,3)
}

TEST(Axis, LinearMapping)
{
    Axis a(Scale::Linear, 0.0, 10.0, 100.0, 200.0);
    EXPECT_DOUBLE_EQ(a.toPixel(0.0), 100.0);
    EXPECT_DOUBLE_EQ(a.toPixel(5.0), 150.0);
    EXPECT_DOUBLE_EQ(a.toPixel(10.0), 200.0);
    // Clamped outside the range.
    EXPECT_DOUBLE_EQ(a.toPixel(-5.0), 100.0);
    EXPECT_DOUBLE_EQ(a.toPixel(50.0), 200.0);
}

TEST(Axis, LogMapping)
{
    Axis a(Scale::Log, 1.0, 100.0, 0.0, 200.0);
    EXPECT_DOUBLE_EQ(a.toPixel(1.0), 0.0);
    EXPECT_NEAR(a.toPixel(10.0), 100.0, 1e-9);
    EXPECT_DOUBLE_EQ(a.toPixel(100.0), 200.0);
}

TEST(Axis, FlippedPixelsForY)
{
    Axis a(Scale::Linear, 0.0, 1.0, 200.0, 0.0);
    EXPECT_DOUBLE_EQ(a.toPixel(0.0), 200.0);
    EXPECT_DOUBLE_EQ(a.toPixel(1.0), 0.0);
}

TEST(Axis, LogTicksArePowersOfTen)
{
    Axis a(Scale::Log, 0.01, 100.0, 0.0, 1.0);
    auto ticks = a.ticks();
    ASSERT_EQ(ticks.size(), 5u);
    EXPECT_DOUBLE_EQ(ticks[0], 0.01);
    EXPECT_DOUBLE_EQ(ticks[4], 100.0);
}

TEST(Axis, LinearTicksNiceSteps)
{
    Axis a(Scale::Linear, 0.0, 1.0, 0.0, 1.0);
    auto ticks = a.ticks();
    EXPECT_GE(ticks.size(), 4u);
    EXPECT_LE(ticks.size(), 12u);
}

TEST(Axis, InvalidConstruction)
{
    EXPECT_THROW(Axis(Scale::Log, 0.0, 10.0, 0.0, 1.0), FatalError);
    EXPECT_THROW(Axis(Scale::Linear, 5.0, 5.0, 0.0, 1.0), FatalError);
    EXPECT_THROW(Axis(Scale::Linear, 0.0, 1.0, 3.0, 3.0), FatalError);
}

TEST(Axis, FormatTick)
{
    EXPECT_EQ(Axis::formatTick(0.0), "0");
    EXPECT_EQ(Axis::formatTick(1.0), "1");
    EXPECT_EQ(Axis::formatTick(0.01), "0.01");
    EXPECT_EQ(Axis::formatTick(100.0), "100");
}

TEST(RooflinePlot, ClassicRooflineSvg)
{
    RooflinePlot plot("Figure 7a", 0.01, 100.0);
    plot.addRoofline(Roofline(7.5e9, 15.1e9, "CPU"));
    std::string svg = plot.renderSvg();
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("Figure 7a"), std::string::npos);
    EXPECT_NE(svg.find("CPU"), std::string::npos);
    EXPECT_NE(svg.find("operational intensity"), std::string::npos);
}

TEST(RooflinePlot, GablesViewIncludesActiveIpsOnly)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    RooflinePlot plot("6a", 0.01, 100.0);
    plot.addGables(soc, Usecase::twoIp("6a", 0.0, 8.0, 0.1));
    std::string svg = plot.renderSvg();
    EXPECT_NE(svg.find("CPU"), std::string::npos);
    EXPECT_NE(svg.find("memory"), std::string::npos);
    // The idle GPU is omitted, as in the paper's Figure 6a.
    EXPECT_EQ(svg.find("GPU"), std::string::npos);
}

TEST(RooflinePlot, AsciiRenderingHasLegendAndDropLines)
{
    SocSpec soc = SocCatalog::paperTwoIpBalanced();
    RooflinePlot plot("6d", 0.01, 100.0);
    plot.addGables(soc, Usecase::twoIp("6d", 0.75, 8.0, 8.0));
    std::string out = plot.renderAscii();
    EXPECT_NE(out.find("6d"), std::string::npos);
    EXPECT_NE(out.find("memory"), std::string::npos);
    EXPECT_NE(out.find('V'), std::string::npos); // drop marker
}

TEST(RooflinePlot, EmptyPlotRejected)
{
    RooflinePlot plot("empty");
    EXPECT_THROW(plot.renderSvg(), FatalError);
    EXPECT_THROW(plot.renderAscii(), FatalError);
}

TEST(SeriesPlot, SvgWithLegend)
{
    SeriesPlot plot("mixing", "f", "normalized perf");
    Series s;
    s.label = "I = 64";
    s.x = {0.0, 0.5, 1.0};
    s.y = {1.0, 2.0, 4.0};
    plot.addSeries(s);
    std::string svg = plot.renderSvg();
    EXPECT_NE(svg.find("mixing"), std::string::npos);
    EXPECT_NE(svg.find("I = 64"), std::string::npos);
}

TEST(SeriesPlot, LogScaleSkipsNonPositive)
{
    SeriesPlot plot("log", "x", "y");
    plot.setScales(Scale::Linear, Scale::Log);
    Series s;
    s.label = "s";
    s.x = {0.0, 1.0, 2.0};
    s.y = {0.0, 1.0, 10.0}; // the zero must be skipped, not crash
    plot.addSeries(s);
    EXPECT_NO_THROW(plot.renderSvg());
    EXPECT_NO_THROW(plot.renderAscii());
}

TEST(SeriesPlot, MismatchedSeriesRejected)
{
    SeriesPlot plot("bad", "x", "y");
    Series s;
    s.label = "s";
    s.x = {1.0, 2.0};
    s.y = {1.0};
    EXPECT_THROW(plot.addSeries(s), FatalError);
    Series empty;
    empty.label = "e";
    EXPECT_THROW(plot.addSeries(empty), FatalError);
    EXPECT_THROW(plot.renderSvg(), FatalError);
}

TEST(SeriesPlot, SinglePointSeriesRenders)
{
    SeriesPlot plot("point", "x", "y");
    Series s;
    s.label = "p";
    s.x = {1.0};
    s.y = {2.0};
    plot.addSeries(s);
    EXPECT_NO_THROW(plot.renderSvg());
    EXPECT_NO_THROW(plot.renderAscii());
}

} // namespace
} // namespace gables
