/**
 * @file
 * Tests for the visualization JSON export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "plot/viz_export.h"
#include "soc/catalog.h"

namespace gables {
namespace {

std::string
exportFor(double f, double i0, double i1)
{
    std::ostringstream oss;
    writeVisualizationJson(oss, SocCatalog::paperTwoIpBalanced(),
                           Usecase::twoIp("u", f, i0, i1));
    return oss.str();
}

TEST(VizExport, ContainsCurvesDropsAndBound)
{
    std::string json = exportFor(0.75, 8.0, 8.0);
    EXPECT_NE(json.find("\"curves\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"ip\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"memory\""), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"Iavg\""), std::string::npos);
    EXPECT_NE(json.find("\"attainable\": 160000000000"),
              std::string::npos);
    EXPECT_NE(json.find("\"bottleneck\""), std::string::npos);
}

TEST(VizExport, IdleIpsOmitted)
{
    std::string json = exportFor(0.0, 8.0, 0.1);
    EXPECT_NE(json.find("CPU (f=1)"), std::string::npos);
    EXPECT_EQ(json.find("GPU"), std::string::npos);
    // No I1 drop either.
    EXPECT_EQ(json.find("\"label\": \"I1\""), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"I0\""), std::string::npos);
}

TEST(VizExport, BalancedStructure)
{
    std::string json = exportFor(0.75, 8.0, 8.0);
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += (c == '{') - (c == '}');
        brackets += (c == '[') - (c == ']');
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(VizExport, SampleCountRespected)
{
    std::ostringstream oss;
    writeVisualizationJson(oss, SocCatalog::paperTwoIp(),
                           Usecase::twoIp("u", 0.5, 1.0, 1.0), 0.1,
                           10.0, 16);
    std::string json = oss.str();
    // The shared x array has exactly 16 entries: count commas inside
    // the first array after "x":.
    size_t start = json.find("\"x\": [");
    ASSERT_NE(start, std::string::npos);
    size_t end = json.find(']', start);
    int commas = 0;
    for (size_t p = start; p < end; ++p)
        commas += json[p] == ',' ? 1 : 0;
    EXPECT_EQ(commas, 15);
}

} // namespace
} // namespace gables
