# ctest helper (cli_record_then_replay): record a real eval run with
# --record, then replay the bundle and require a clean match. Driven
# through `cmake -P` so the two-step sequence stays a single test.
#
# Inputs: -DGABLES=<gables binary> -DBUNDLE=<bundle path to write>
#         -DCONFIG=<soc config file>

execute_process(
    COMMAND ${GABLES} --record ${BUNDLE} eval --file ${CONFIG}
            --usecase 6b --metrics ${BUNDLE}.report.json
    RESULT_VARIABLE record_rc)
if(NOT record_rc EQUAL 0)
    message(FATAL_ERROR "recording run failed with ${record_rc}")
endif()

execute_process(
    COMMAND ${GABLES} replay ${BUNDLE}
    OUTPUT_VARIABLE replay_out
    RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 0)
    message(FATAL_ERROR
            "replay diverged with ${replay_rc}:\n${replay_out}")
endif()
if(NOT replay_out MATCHES ": match")
    message(FATAL_ERROR "unexpected replay output:\n${replay_out}")
endif()
