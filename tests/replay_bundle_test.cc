/**
 * @file
 * Unit tests for the replay bundle format: write/parse round-trip,
 * schema name/version enforcement, tolerance decoding, shape
 * validation of each section, and writeJsonValue() fidelity for
 * arbitrary JSON documents (the recorded report is embedded through
 * it, so it must re-emit every value type faithfully).
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "replay/bundle.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/parse.h"

namespace gables {
namespace replay {
namespace {

ReplayBundle
sampleBundle()
{
    ReplayBundle b;
    b.argv = {"gables", "eval", "--file", "configs/two_ip.ini",
              "--usecase", "6b"};
    b.configFiles["configs/two_ip.ini"] =
        "[soc]\nppeak = 40 Gops/s\nbpeak = 10 GB/s\n";
    b.exitCode = 0;
    b.tolerance.tolRel = 1e-9;
    b.tolerance.tolAbs = 1e-12;
    b.tolerance.ignore = {"profile", "parallel.worker_busy_s"};
    b.hasReport = true;
    b.report = parseJson(
        "{\"schema\": {\"name\": \"gables-run-report\"},"
        " \"gauges\": {\"eval.attainable\": 1.328e9}}");
    return b;
}

std::string
serialize(const ReplayBundle &b)
{
    std::ostringstream out;
    writeBundle(out, b);
    return out.str();
}

TEST(ReplayBundle, WriteParseRoundTrip)
{
    ReplayBundle b = sampleBundle();
    std::string text = serialize(b);
    ReplayBundle back = parseBundle(parseJson(text), "bundle.json");

    EXPECT_EQ(back.schemaVersion, ReplayBundle::kSchemaVersion);
    EXPECT_EQ(back.argv, b.argv);
    EXPECT_EQ(back.configFiles, b.configFiles);
    EXPECT_EQ(back.exitCode, 0);
    EXPECT_DOUBLE_EQ(back.tolerance.tolRel, 1e-9);
    EXPECT_DOUBLE_EQ(back.tolerance.tolAbs, 1e-12);
    EXPECT_EQ(back.tolerance.ignore, b.tolerance.ignore);
    ASSERT_TRUE(back.hasReport);
    EXPECT_DOUBLE_EQ(
        back.report.at("gauges").at("eval.attainable").asNumber(),
        1.328e9);
    EXPECT_EQ(back.subcommand(), "eval");
}

TEST(ReplayBundle, ReportlessBundleRoundTrips)
{
    ReplayBundle b = sampleBundle();
    b.hasReport = false;
    b.report = JsonValue();
    ReplayBundle back =
        parseBundle(parseJson(serialize(b)), "bundle.json");
    EXPECT_FALSE(back.hasReport);
    EXPECT_TRUE(back.report.isNull());
}

TEST(ReplayBundle, RejectsWrongSchemaName)
{
    ReplayBundle b = sampleBundle();
    std::string text = serialize(b);
    size_t pos = text.find("gables-replay-bundle");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("gables-replay-bundle").size(),
                 "gables-run-report!!!");
    EXPECT_THROW(parseBundle(parseJson(text), "bundle.json"),
                 ConfigError);
}

TEST(ReplayBundle, RejectsFutureSchemaVersion)
{
    ReplayBundle b = sampleBundle();
    b.schemaVersion = ReplayBundle::kSchemaVersion + 98;
    try {
        parseBundle(parseJson(serialize(b)), "bundle.json");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        std::string what = err.what();
        // The diagnostic names both the found and supported version.
        EXPECT_NE(what.find("99"), std::string::npos) << what;
        EXPECT_NE(what.find("1"), std::string::npos) << what;
        EXPECT_NE(what.find("bundle.json"), std::string::npos)
            << what;
    }
}

TEST(ReplayBundle, RejectsMalformedSections)
{
    struct Case {
        const char *text;
        const char *label;
    };
    const Case cases[] = {
        {"[1, 2, 3]", "root not an object"},
        {"{}", "missing schema"},
        {"{\"schema\": {\"name\": \"gables-replay-bundle\","
         " \"version\": 1}}",
         "missing command"},
        {"{\"schema\": {\"name\": \"gables-replay-bundle\","
         " \"version\": 1},"
         " \"command\": {\"argv\": [\"gables\"]}, \"exit_code\": 0}",
         "argv too short"},
        {"{\"schema\": {\"name\": \"gables-replay-bundle\","
         " \"version\": 1},"
         " \"command\": {\"argv\": [\"gables\", 42]},"
         " \"exit_code\": 0}",
         "argv element not a string"},
        {"{\"schema\": {\"name\": \"gables-replay-bundle\","
         " \"version\": 1},"
         " \"command\": {\"argv\": [\"gables\", \"eval\"]},"
         " \"exit_code\": 0,"
         " \"config_files\": {\"a.ini\": 7}}",
         "config file contents not a string"},
        {"{\"schema\": {\"name\": \"gables-replay-bundle\","
         " \"version\": 1},"
         " \"command\": {\"argv\": [\"gables\", \"eval\"]},"
         " \"exit_code\": 0,"
         " \"tolerance\": {\"tol_rel\": -0.5}}",
         "negative tolerance"},
        {"{\"schema\": {\"name\": \"gables-replay-bundle\","
         " \"version\": 1},"
         " \"command\": {\"argv\": [\"gables\", \"eval\"]},"
         " \"exit_code\": 0, \"report\": [true]}",
         "report not an object"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.label);
        EXPECT_THROW(parseBundle(parseJson(c.text), "bundle.json"),
                     ConfigError);
    }
}

// writeJsonValue() must re-emit any DOM so that a parse of the output
// equals the input — the recorded report travels through it twice
// (record-time embed, replay-time compare), so lossiness here would
// surface as phantom diffs.
TEST(ReplayBundle, WriteJsonValuePreservesEveryValueType)
{
    const std::string text =
        "{\"null\": null, \"t\": true, \"f\": false,"
        " \"int\": 42, \"neg\": -17.25, \"tiny\": 1.328e-300,"
        " \"str\": \"a \\\"quoted\\\" string\\n\","
        " \"arr\": [1, [2, {\"deep\": 3}], []],"
        " \"obj\": {\"nested\": {\"empty\": {}}}}";
    JsonValue doc = parseJson(text);

    std::ostringstream out;
    JsonWriter json(out, /*pretty=*/true);
    writeJsonValue(json, doc);
    JsonValue back = parseJson(out.str());

    EXPECT_TRUE(back.at("null").isNull());
    EXPECT_TRUE(back.at("t").asBool());
    EXPECT_FALSE(back.at("f").asBool());
    EXPECT_DOUBLE_EQ(back.at("int").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(back.at("neg").asNumber(), -17.25);
    EXPECT_DOUBLE_EQ(back.at("tiny").asNumber(), 1.328e-300);
    EXPECT_EQ(back.at("str").asString(), "a \"quoted\" string\n");
    ASSERT_EQ(back.at("arr").size(), 3u);
    EXPECT_DOUBLE_EQ(
        back.at("arr").at(1).at(1).at("deep").asNumber(), 3.0);
    EXPECT_EQ(back.at("arr").at(2).size(), 0u);
    EXPECT_EQ(back.at("obj").at("nested").at("empty").size(), 0u);
    // Member order is part of the document contract.
    EXPECT_EQ(back.members().front().first, "null");
    EXPECT_EQ(back.members().back().first, "obj");
}

} // namespace
} // namespace replay
} // namespace gables
