/**
 * @file
 * End-to-end record -> replay round-trip tests, driven through the
 * real CLI dispatch (gables::cli::runCommand) in-process. The core
 * property: any recorded invocation replays diff-clean (exit 0), even
 * for randomized SoCs/usecases and even after the config file on disk
 * is destroyed (the bundle inlines its contents). Perturbed bundles
 * must fail with the contract's exit codes: a spliced-in foreign
 * report exits 1, an unsupported schema version exits 2. Recording is
 * byte-transparent: stdout and the metrics file are identical with
 * and without --record's hooks installed.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/driver.h"
#include "core/gables.h"
#include "replay/bundle.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "soc/config.h"
#include "util/rng.h"

namespace gables {
namespace {

replay::CommandRunner
cliRunner()
{
    return [](const std::vector<std::string> &argv) {
        return cli::runCommand(argv);
    };
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    out << text;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Random small SoC + one "mix" usecase, as config text. */
std::string
randomConfig(Rng &rng)
{
    size_t n = 1 + static_cast<size_t>(rng.next() % 3);
    std::vector<IpSpec> ips;
    for (size_t i = 0; i < n; ++i) {
        ips.push_back(IpSpec{"IP" + std::to_string(i),
                             i == 0 ? 1.0 : rng.uniform(0.5, 20.0),
                             rng.uniform(1e9, 40e9)});
    }
    SocSpec soc("rand", rng.uniform(10e9, 100e9),
                rng.uniform(5e9, 30e9), std::move(ips));

    std::vector<double> f(n);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        f[i] = rng.uniform(0.01, 1.0);
        sum += f[i];
    }
    std::vector<IpWork> work;
    for (size_t i = 0; i < n; ++i)
        work.push_back(IpWork{f[i] / sum, rng.uniform(0.1, 16.0)});
    return formatSocConfig(soc, {Usecase("mix", std::move(work))});
}

/** Record one in-process invocation and return its bundle. */
replay::ReplayBundle
record(const std::vector<std::string> &argv)
{
    replay::Recorder rec(argv);
    int code = cli::runCommand(argv);
    return rec.bundle(code);
}

void
writeBundleFile(const std::string &path,
                const replay::ReplayBundle &bundle)
{
    std::ofstream out(path);
    ASSERT_TRUE(out) << path;
    replay::writeBundle(out, bundle);
}

// The headline property: record a randomized eval, replay it, and
// the fresh report must diff clean against the recorded one — even
// after the config file the run read is overwritten on disk, because
// the bundle carries the captured bytes.
TEST(ReplayRoundTrip, RandomizedEvalReplaysClean)
{
    Rng rng(0x9AB1E5);
    for (int iter = 0; iter < 6; ++iter) {
        SCOPED_TRACE(iter);
        const std::string cfg = "replay_rt_soc.ini";
        const std::string bundle = "replay_rt_bundle.json";
        writeFile(cfg, randomConfig(rng));

        std::vector<std::string> argv = {
            "gables",     "eval",  "--file",    cfg,
            "--usecase",  "mix",   "--metrics", "replay_rt_out.json"};
        testing::internal::CaptureStdout();
        replay::ReplayBundle b = record(argv);
        testing::internal::GetCapturedStdout();
        ASSERT_EQ(b.exitCode, 0);
        ASSERT_TRUE(b.hasReport);
        ASSERT_EQ(b.configFiles.count(cfg), 1u);
        writeBundleFile(bundle, b);

        // The inlined contents must win over whatever is on disk.
        writeFile(cfg, "[soc]\nthis is not even a config\n");

        testing::internal::CaptureStdout();
        replay::ReplayOutcome outcome =
            replay::replayBundle(bundle, cliRunner());
        testing::internal::GetCapturedStdout();
        EXPECT_EQ(outcome.exitCode, 0) << outcome.detail;
        EXPECT_EQ(outcome.status, "match");
        EXPECT_EQ(outcome.subcommand, "eval");
        EXPECT_GT(outcome.fieldsCompared, 0u);
        EXPECT_EQ(outcome.diffCount, 0u);
    }
}

// Splicing a different run's report into a bundle must surface as a
// divergence (exit 1), and a future schema version as a bad bundle
// (exit 2) — the validate-style contract CI keys off.
TEST(ReplayRoundTrip, PerturbedBundlesFailWithContractExitCodes)
{
    Rng rng(0xD1FF);
    const std::string cfgA = "replay_rt_perturb_a.ini";
    const std::string cfgB = "replay_rt_perturb_b.ini";
    writeFile(cfgA, randomConfig(rng));
    writeFile(cfgB, randomConfig(rng));

    std::vector<std::string> argvA = {
        "gables",    "eval", "--file",    cfgA,
        "--usecase", "mix",  "--metrics", "replay_rt_a.json"};
    std::vector<std::string> argvB = {
        "gables",    "eval", "--file",    cfgB,
        "--usecase", "mix",  "--metrics", "replay_rt_b.json"};

    testing::internal::CaptureStdout();
    replay::ReplayBundle a = record(argvA);
    replay::ReplayBundle b = record(argvB);
    testing::internal::GetCapturedStdout();
    ASSERT_TRUE(a.hasReport);
    ASSERT_TRUE(b.hasReport);

    const std::string path = "replay_rt_perturbed.json";

    // Edited metric: a's invocation with b's recorded numbers.
    replay::ReplayBundle spliced = a;
    spliced.report = b.report;
    writeBundleFile(path, spliced);
    testing::internal::CaptureStdout();
    replay::ReplayOutcome mismatch =
        replay::replayBundle(path, cliRunner());
    testing::internal::GetCapturedStdout();
    EXPECT_EQ(mismatch.exitCode, 1);
    EXPECT_EQ(mismatch.status, "report-mismatch");
    EXPECT_GT(mismatch.diffCount, 0u);

    // Edited schema version: refused before any re-execution.
    replay::ReplayBundle future = a;
    future.schemaVersion = 99;
    writeBundleFile(path, future);
    replay::ReplayOutcome bad = replay::replayBundle(path, cliRunner());
    EXPECT_EQ(bad.exitCode, 2);
    EXPECT_EQ(bad.status, "bad-bundle");

    // Edited exit code: the recorded run claims failure, the fresh
    // run succeeds — that is a divergence, not a bad bundle.
    replay::ReplayBundle wrongExit = a;
    wrongExit.exitCode = 1;
    writeBundleFile(path, wrongExit);
    testing::internal::CaptureStdout();
    replay::ReplayOutcome exitMismatch =
        replay::replayBundle(path, cliRunner());
    testing::internal::GetCapturedStdout();
    EXPECT_EQ(exitMismatch.exitCode, 1);
    EXPECT_EQ(exitMismatch.status, "exit-code-mismatch");
}

TEST(ReplayRoundTrip, UnreadableAndNestedBundlesAreBad)
{
    replay::ReplayOutcome missing = replay::replayBundle(
        "replay_rt_no_such_bundle.json", cliRunner());
    EXPECT_EQ(missing.exitCode, 2);
    EXPECT_EQ(missing.status, "bad-bundle");

    // A bundle whose recorded command is itself `replay` is refused:
    // replays must not recurse.
    replay::ReplayBundle nested;
    nested.argv = {"gables", "replay", "inner.json"};
    writeBundleFile("replay_rt_nested.json", nested);
    replay::ReplayOutcome outcome =
        replay::replayBundle("replay_rt_nested.json", cliRunner());
    EXPECT_EQ(outcome.exitCode, 2);
    EXPECT_EQ(outcome.status, "bad-bundle");
}

// Artifacts the replayed command writes to relative paths (here the
// recorded --metrics file) must land under ReplayOptions::artifactDir
// instead of littering the working directory, and an empty
// artifactDir must restore the original behavior.
TEST(ReplayRoundTrip, RelativeArtifactsRedirectToOutDir)
{
    Rng rng(0x0D1A);
    const std::string cfg = "replay_rt_redir.ini";
    const std::string bundlePath = "replay_rt_redir_bundle.json";
    const std::string metrics = "replay_rt_redir_metrics.json";
    writeFile(cfg, randomConfig(rng));

    std::vector<std::string> argv = {
        "gables",    "eval", "--file",    cfg,
        "--usecase", "mix",  "--metrics", metrics};
    testing::internal::CaptureStdout();
    replay::ReplayBundle b = record(argv);
    testing::internal::GetCapturedStdout();
    ASSERT_EQ(b.exitCode, 0);
    writeBundleFile(bundlePath, b);
    std::remove(metrics.c_str());

    replay::ReplayOptions opts;
    opts.artifactDir = "replay_rt_outdir";
    testing::internal::CaptureStdout();
    replay::ReplayOutcome outcome =
        replay::replayBundle(bundlePath, cliRunner(), opts);
    testing::internal::GetCapturedStdout();
    EXPECT_EQ(outcome.exitCode, 0) << outcome.detail;
    EXPECT_TRUE(readFile(metrics).empty())
        << "metrics leaked into the working directory";
    EXPECT_FALSE(readFile("replay_rt_outdir/" + metrics).empty());

    opts.artifactDir.clear();
    testing::internal::CaptureStdout();
    outcome = replay::replayBundle(bundlePath, cliRunner(), opts);
    testing::internal::GetCapturedStdout();
    EXPECT_EQ(outcome.exitCode, 0) << outcome.detail;
    EXPECT_FALSE(readFile(metrics).empty());
}

// Recording must be byte-transparent: the same invocation produces
// identical stdout and an identical metrics file whether or not the
// recorder's capture hooks are installed.
TEST(ReplayRoundTrip, RecordingIsByteTransparent)
{
    Rng rng(0xBEEF);
    const std::string cfg = "replay_rt_transparent.ini";
    writeFile(cfg, randomConfig(rng));
    std::vector<std::string> argv = {
        "gables",    "eval", "--file",    cfg,
        "--usecase", "mix",  "--metrics", "replay_rt_t.json"};

    testing::internal::CaptureStdout();
    int plainCode = cli::runCommand(argv);
    std::string plainOut = testing::internal::GetCapturedStdout();
    std::string plainMetrics = readFile("replay_rt_t.json");

    testing::internal::CaptureStdout();
    replay::ReplayBundle bundle = record(argv);
    std::string recordedOut = testing::internal::GetCapturedStdout();
    std::string recordedMetrics = readFile("replay_rt_t.json");

    EXPECT_EQ(bundle.exitCode, plainCode);
    EXPECT_EQ(recordedOut, plainOut);
    EXPECT_EQ(recordedMetrics, plainMetrics);
    EXPECT_FALSE(plainMetrics.empty());
}

} // namespace
} // namespace gables
