/**
 * @file
 * Protocol tests for the `gables serve` request processor
 * (serve/service.h), driven directly — no sockets: the error-code
 * contract (bad-request = 2, config/deadline/internal = 1), eval
 * parity with GablesModel::evaluate, config-file resolution, deadline
 * expiry, evaluator-cache counters, the stats RunReport, and batch
 * processing matching serial byte-for-byte.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/gables.h"
#include "core/serialize.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "soc/catalog.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace {

using namespace gables;

/** Build an inline request for a soc/usecase pair. */
std::string
modelRequest(int id, const std::string &op, const SocSpec &soc,
             const Usecase &usecase, const std::string &extra = "")
{
    std::ostringstream soc_json;
    writeJson(soc_json, soc);
    std::ostringstream usecase_json;
    writeJson(usecase_json, usecase);
    std::ostringstream req;
    req << "{\"id\": " << id << ", \"op\": \"" << op
        << "\", \"soc\": " << soc_json.str()
        << ", \"usecase\": " << usecase_json.str();
    if (!extra.empty())
        req << ", " << extra;
    req << "}";
    return req.str();
}

std::string
evalRequest(int id, const SocSpec &soc, const Usecase &usecase,
            const std::string &extra = "")
{
    return modelRequest(id, "eval", soc, usecase, extra);
}

Usecase
paperUsecase(double f, double i0, double i1)
{
    return Usecase("test",
                   {IpWork{1.0 - f, i0}, IpWork{f, i1}});
}

/** Parse a response and require the basic envelope. */
JsonValue
parseResponse(const std::string &line)
{
    JsonValue doc = parseJson(line);
    EXPECT_TRUE(doc.isObject()) << line;
    EXPECT_TRUE(doc.has("ok")) << line;
    return doc;
}

double
statValue(const JsonValue &report, const std::string &name)
{
    if (!report.at("stats").has(name))
        return 0.0;
    return report.at("stats").at(name).at("value").asNumber();
}

JsonValue
statsDoc(serve::ServeService &service)
{
    JsonValue response = parseResponse(
        service.handleLine("{\"id\": 99, \"op\": \"stats\"}"));
    EXPECT_TRUE(response.at("ok").asBool());
    return response.at("result");
}

TEST(ServeProtocol, PingAndEnvelope)
{
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc = parseResponse(
        service.handleLine("{\"id\": 7, \"op\": \"ping\"}"));
    EXPECT_TRUE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("id").asNumber(), 7.0);
    EXPECT_TRUE(doc.at("result").at("pong").asBool());
}

TEST(ServeProtocol, MalformedJsonIsBadRequestWithNullId)
{
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc =
        parseResponse(service.handleLine("this is not json"));
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_TRUE(doc.at("id").isNull());
    EXPECT_EQ(doc.at("error").at("code").asNumber(), 2.0);
    EXPECT_EQ(doc.at("error").at("kind").asString(), "bad-request");
}

TEST(ServeProtocol, UnknownOpSuggestsAndCounts)
{
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc = parseResponse(
        service.handleLine("{\"id\": 1, \"op\": \"evla\"}"));
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("error").at("code").asNumber(), 2.0);
    EXPECT_NE(doc.at("error").at("message").asString().find("eval"),
              std::string::npos);
    EXPECT_EQ(statValue(statsDoc(service), "serve.op.unknown"), 1.0);
}

TEST(ServeProtocol, EvalMatchesModelExactly)
{
    serve::ServeService service{serve::ServeOptions{}};
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase usecase = paperUsecase(0.75, 8.0, 0.1);
    GablesResult expected = GablesModel::evaluate(soc, usecase);

    JsonValue doc = parseResponse(
        service.handleLine(evalRequest(1, soc, usecase)));
    ASSERT_TRUE(doc.at("ok").asBool());
    const JsonValue &result = doc.at("result");
    // The response formatter is round-trip exact, so the daemon's
    // number re-parses to the model's bits.
    EXPECT_EQ(result.at("attainable_ops_per_sec").asNumber(),
              expected.attainable);
    EXPECT_EQ(result.at("bottleneck_label").asString(),
              expected.bottleneckLabel(soc));
    EXPECT_FALSE(result.at("cache_hit").asBool());
}

TEST(ServeProtocol, EvalDetailCarriesPerIpTimings)
{
    serve::ServeService service{serve::ServeOptions{}};
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase usecase = paperUsecase(0.75, 8.0, 0.1);
    GablesResult expected = GablesModel::evaluate(soc, usecase);

    JsonValue doc = parseResponse(service.handleLine(
        evalRequest(1, soc, usecase, "\"detail\": true")));
    ASSERT_TRUE(doc.at("ok").asBool());
    const JsonValue &ips = doc.at("result").at("ips");
    ASSERT_EQ(ips.size(), expected.ips.size());
    for (size_t i = 0; i < ips.size(); ++i) {
        EXPECT_EQ(ips.at(i).at("time").asNumber(),
                  expected.ips[i].time);
        EXPECT_EQ(ips.at(i).at("name").asString(), soc.ip(i).name);
    }
}

TEST(ServeProtocol, ConfigFileResolutionAndNamedUsecase)
{
    std::string path = ::testing::TempDir() + "serve_cfg.ini";
    {
        std::ofstream out(path);
        out << "[soc]\nname = cfg\nppeak = 40 Gops/s\n"
               "bpeak = 10 GB/s\n"
               "[ip CPU]\naccel = 1\nbandwidth = 6 GB/s\n"
               "[ip GPU]\naccel = 5\nbandwidth = 15 GB/s\n"
               "[usecase 6b]\nCPU = 0.25 @ 8\nGPU = 0.75 @ 0.1\n";
    }
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc = parseResponse(service.handleLine(
        "{\"id\": 1, \"op\": \"eval\", \"config\": \"" + path +
        "\", \"usecase\": \"6b\"}"));
    ASSERT_TRUE(doc.at("ok").asBool()) << doc.at("error").asString();
    // Figure 6b: 1.328 Gops/s.
    EXPECT_NEAR(doc.at("result")
                    .at("attainable_ops_per_sec")
                    .asNumber(),
                1.328e9, 1e6);
    std::remove(path.c_str());
}

TEST(ServeProtocol, BadConfigPathIsConfigErrorCode1)
{
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc = parseResponse(service.handleLine(
        "{\"id\": 1, \"op\": \"eval\", "
        "\"config\": \"/no/such/file.ini\"}"));
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("error").at("code").asNumber(), 1.0);
    EXPECT_EQ(doc.at("error").at("kind").asString(), "config");
}

TEST(ServeProtocol, MalformedConfigCarriesLocatedDiagnostic)
{
    std::string path = ::testing::TempDir() + "serve_bad_cfg.ini";
    {
        std::ofstream out(path);
        out << "[soc]\nppeak = 40 Gops/s\nbpeek = 10 GB/s\n";
    }
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc = parseResponse(service.handleLine(
        "{\"id\": 1, \"op\": \"eval\", \"config\": \"" + path +
        "\"}"));
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("error").at("code").asNumber(), 1.0);
    // The PR 3 diagnostics carry file:line and a suggestion; both
    // must survive into the wire error.
    std::string message = doc.at("error").at("message").asString();
    EXPECT_NE(message.find(":3:"), std::string::npos) << message;
    EXPECT_NE(message.find("bpeak"), std::string::npos) << message;
    std::remove(path.c_str());
}

TEST(ServeProtocol, DeadlineZeroExpiresDeterministically)
{
    serve::ServeService service{serve::ServeOptions{}};
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase usecase = paperUsecase(0.75, 8.0, 8.0);
    JsonValue doc = parseResponse(service.handleLine(
        evalRequest(1, soc, usecase, "\"deadline_ms\": 0")));
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("error").at("code").asNumber(), 1.0);
    EXPECT_EQ(doc.at("error").at("kind").asString(), "deadline");
    EXPECT_EQ(statValue(statsDoc(service), "serve.deadline_expired"),
              1.0);
}

TEST(ServeProtocol, NegativeDeadlineIsBadRequest)
{
    serve::ServeService service{serve::ServeOptions{}};
    JsonValue doc = parseResponse(service.handleLine(
        "{\"id\": 1, \"op\": \"ping\", \"deadline_ms\": -5}"));
    EXPECT_FALSE(doc.at("ok").asBool());
    EXPECT_EQ(doc.at("error").at("code").asNumber(), 2.0);
}

TEST(ServeProtocol, CacheHitsMissesAndEvictions)
{
    serve::ServeOptions options;
    options.cacheCapacity = 2;
    serve::ServeService service{options};
    SocSpec soc = SocCatalog::paperTwoIp();

    // Three distinct pairs through a 2-entry cache: the first pair
    // is evicted, so its repeat misses again.
    Usecase a = paperUsecase(0.75, 8.0, 0.1);
    Usecase b = paperUsecase(0.75, 8.0, 8.0);
    Usecase c = paperUsecase(0.50, 4.0, 2.0);
    service.handleLine(evalRequest(1, soc, a)); // miss
    service.handleLine(evalRequest(2, soc, a)); // hit
    service.handleLine(evalRequest(3, soc, b)); // miss
    service.handleLine(evalRequest(4, soc, c)); // miss, evicts a
    service.handleLine(evalRequest(5, soc, a)); // miss again

    EXPECT_EQ(service.cache().hits(), 1u);
    EXPECT_EQ(service.cache().misses(), 4u);
    EXPECT_EQ(service.cache().evictions(), 2u);
    EXPECT_EQ(service.cache().size(), 2u);

    JsonValue report = statsDoc(service);
    EXPECT_EQ(statValue(report, "serve.cache_hits"), 1.0);
    EXPECT_EQ(statValue(report, "serve.cache_misses"), 4.0);
    EXPECT_EQ(statValue(report, "serve.cache_evictions"), 2.0);
}

TEST(ServeProtocol, CacheHitFlagFlipsOnRepeat)
{
    serve::ServeService service{serve::ServeOptions{}};
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase usecase = paperUsecase(0.75, 8.0, 0.1);
    JsonValue first = parseResponse(
        service.handleLine(evalRequest(1, soc, usecase)));
    JsonValue second = parseResponse(
        service.handleLine(evalRequest(2, soc, usecase)));
    EXPECT_FALSE(first.at("result").at("cache_hit").asBool());
    EXPECT_TRUE(second.at("result").at("cache_hit").asBool());
}

TEST(ServeProtocol, SweepRestoresTheCachedEvaluator)
{
    serve::ServeService service{serve::ServeOptions{}};
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase usecase = paperUsecase(0.75, 8.0, 0.1);
    GablesResult expected = GablesModel::evaluate(soc, usecase);

    JsonValue sweep = parseResponse(service.handleLine(modelRequest(
        1, "sweep", soc, usecase,
        "\"axis\": \"intensity\", \"ip\": 1, "
        "\"values\": [0.1, 1, 10, 100]")));
    ASSERT_TRUE(sweep.at("ok").asBool());
    ASSERT_EQ(sweep.at("result")
                  .at("attainable_ops_per_sec")
                  .size(),
              4u);

    // The sweep mutated intensity at IP 1 and restored it: the next
    // eval of the same pair hits the cache and still matches the
    // from-scratch model.
    JsonValue eval = parseResponse(
        service.handleLine(evalRequest(2, soc, usecase)));
    ASSERT_TRUE(eval.at("ok").asBool());
    EXPECT_TRUE(eval.at("result").at("cache_hit").asBool());
    EXPECT_EQ(
        eval.at("result").at("attainable_ops_per_sec").asNumber(),
        expected.attainable);
}

TEST(ServeProtocol, StatsReportParsesAsRunReport)
{
    serve::ServeService service{serve::ServeOptions{}};
    service.handleLine("{\"id\": 1, \"op\": \"ping\"}");
    JsonValue report = statsDoc(service);
    EXPECT_EQ(report.at("schema").at("name").asString(),
              "gables-run-report");
    EXPECT_EQ(report.at("generator").asString(), "gables serve");
    EXPECT_EQ(report.at("config").at("cache_capacity").asNumber(),
              64.0);
    EXPECT_GE(statValue(report, "serve.requests"), 1.0);
    EXPECT_GE(statValue(report, "serve.op.ping"), 1.0);

    // The pretty variant returned for the snapshot file parses to
    // the same document shape.
    JsonValue snapshot = parseJson(service.statsReportJson());
    EXPECT_EQ(snapshot.at("schema").at("name").asString(),
              "gables-run-report");
}

TEST(ServeProtocol, StatsExposeEvalCountCacheRateAndLaneWidth)
{
    serve::ServeService service{serve::ServeOptions{}};
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase usecase = paperUsecase(0.75, 8.0, 0.1);
    service.handleLine(evalRequest(1, soc, usecase)); // miss
    service.handleLine(evalRequest(2, soc, usecase)); // hit
    service.handleLine(modelRequest(
        3, "sweep", soc, usecase,
        "\"axis\": \"intensity\", \"ip\": 1, "
        "\"values\": [0.1, 1, 10, 100]"));

    JsonValue report = statsDoc(service);
    // Two evals plus four sweep grid points.
    EXPECT_EQ(statValue(report, "serve.model_evals"), 6.0);
    EXPECT_EQ(statValue(report, "serve.sweep_points"), 4.0);
    const double rate = statValue(report, "serve.cache_hit_rate");
    EXPECT_GT(rate, 0.0);
    EXPECT_LE(rate, 1.0);

    // The lane-width config field tracks the runtime toggle, so a
    // loadgen reading the stats op can tell which path served it.
    EXPECT_EQ(report.at("config").at("simd_compiled").asNumber(),
              simd::kCompiledIn ? 1.0 : 0.0);
    EXPECT_EQ(report.at("config").at("simd_lane_width").asNumber(),
              simd::enabled()
                  ? static_cast<double>(GablesEvalPack::kWidth)
                  : 1.0);
    {
        simd::ScopedEnable off(false);
        JsonValue scalar = statsDoc(service);
        EXPECT_EQ(
            scalar.at("config").at("simd_lane_width").asNumber(),
            1.0);
    }
}

TEST(ServeProtocol, BatchMatchesSerialByteForByte)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    std::vector<std::string> lines;
    for (int i = 0; i < 40; ++i) {
        Usecase usecase = paperUsecase(0.25 + 0.01 * (i % 5), 8.0,
                                       0.1 * (1 + i % 7));
        lines.push_back(evalRequest(i, soc, usecase));
    }
    lines.push_back("broken json");
    lines.push_back("{\"id\": 40, \"op\": \"ping\"}");

    serve::ServeOptions serial_opts;
    serial_opts.jobs = 1;
    serve::ServeService serial{serial_opts};
    std::vector<std::string> expected;
    for (const std::string &line : lines)
        expected.push_back(serial.handleLine(line));

    serve::ServeOptions pooled_opts;
    pooled_opts.jobs = 4;
    serve::ServeService pooled{pooled_opts};
    std::vector<std::string> actual = pooled.handleBatch(lines);

    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(actual[i], expected[i]) << "request " << i;

    // Telemetry commits in request order: both registries agree on
    // every counter the batch touched.
    EXPECT_EQ(statValue(statsDoc(pooled), "serve.op.eval"),
              statValue(statsDoc(serial), "serve.op.eval"));
    EXPECT_EQ(statValue(statsDoc(pooled), "serve.responses_error"),
              statValue(statsDoc(serial), "serve.responses_error"));
}

TEST(ServeProtocol, ShutdownSetsTheFlagAfterResponse)
{
    serve::ServeService service{serve::ServeOptions{}};
    EXPECT_FALSE(service.shutdownRequested());
    JsonValue doc = parseResponse(
        service.handleLine("{\"id\": 1, \"op\": \"shutdown\"}"));
    EXPECT_TRUE(doc.at("ok").asBool());
    EXPECT_TRUE(doc.at("result").at("shutting_down").asBool());
    EXPECT_TRUE(service.shutdownRequested());
}

TEST(ServeProtocol, RecordTeeCapturesRequestAndResponse)
{
    std::string path = ::testing::TempDir() + "serve_record.jsonl";
    std::remove(path.c_str());
    {
        serve::ServeOptions options;
        options.recordPath = path;
        serve::ServeService service{options};
        service.handleLine("{\"id\": 1, \"op\": \"ping\"}");
        service.handleLine("nonsense");
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::vector<JsonValue> records;
    while (std::getline(in, line))
        records.push_back(parseJson(line));
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].at("request").asString(),
              "{\"id\": 1, \"op\": \"ping\"}");
    EXPECT_NE(records[0].at("response").asString().find("pong"),
              std::string::npos);
    EXPECT_NE(records[1].at("response").asString().find("bad-request"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(ServeProtocol, ErrorCodeContractMatchesCli)
{
    // The wire "code" mirrors the CLI exit-code contract
    // (docs/ERRORS.md): usage-shaped problems are 2, data/config
    // problems are 1.
    EXPECT_EQ(serve::errorCode(serve::ErrorKind::BadRequest), 2);
    EXPECT_EQ(serve::errorCode(serve::ErrorKind::Config), 1);
    EXPECT_EQ(serve::errorCode(serve::ErrorKind::Deadline), 1);
    EXPECT_EQ(serve::errorCode(serve::ErrorKind::Internal), 1);
}

TEST(ServeCacheKey, ExactOnParametersAndNames)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    Usecase a = paperUsecase(0.75, 8.0, 0.1);
    std::string key_a = serve::cacheKey(soc, a);
    EXPECT_EQ(key_a, serve::cacheKey(soc, a));
    // Any parameter change (even in the last ulp) changes the key.
    Usecase b = paperUsecase(
        0.75, 8.0, std::nextafter(0.1, 1.0));
    EXPECT_NE(key_a, serve::cacheKey(soc, b));
    // So does a different SoC with identical numbers but new names.
    SocSpec renamed("other", soc.ppeak(), soc.bpeak(),
                    {soc.ip(0), soc.ip(1)});
    EXPECT_NE(key_a, serve::cacheKey(renamed, a));
}

} // namespace
