/**
 * @file
 * Transport tests for the `gables serve` daemon (serve/server.h):
 * a real unix-domain socket round trip with the server loop on a
 * background thread — request/response ordering across one
 * connection, multiple sequential connections, CRLF tolerance, the
 * stop flag, and the atomic stats snapshot written on shutdown.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/service.h"
#include "util/json_reader.h"

namespace {

using namespace gables;

/** Minimal blocking client for the test. */
class TestClient
{
  public:
    explicit TestClient(const std::string &path) { open(path); }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void open(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd_, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        // start() has already bound + listened before the loop
        // thread spins up, so connect succeeds as soon as the
        // socket file exists.
        int rc = -1;
        for (int attempt = 0; attempt < 100 && rc != 0; ++attempt) {
            rc = ::connect(
                fd_, reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr));
            if (rc != 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        ASSERT_EQ(rc, 0) << std::strerror(errno);
    }

    void send(const std::string &bytes)
    {
        ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
                  static_cast<ssize_t>(bytes.size()));
    }

    std::string recvLine()
    {
        for (;;) {
            size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (got <= 0)
                return "";
            buf_.append(chunk, static_cast<size_t>(got));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

class ServeServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        socketPath_ = ::testing::TempDir() + "serve_server_" +
                      std::to_string(::getpid()) + ".sock";
        statsPath_ = ::testing::TempDir() + "serve_server_" +
                     std::to_string(::getpid()) + ".stats.json";
        std::remove(socketPath_.c_str());
        std::remove(statsPath_.c_str());
    }

    void TearDown() override
    {
        std::remove(socketPath_.c_str());
        std::remove(statsPath_.c_str());
    }

    std::string socketPath_;
    std::string statsPath_;
};

TEST_F(ServeServerTest, RoundTripAndSnapshotOnShutdown)
{
    serve::ServeService service{serve::ServeOptions{}};
    serve::ServerOptions options;
    options.socketPath = socketPath_;
    options.statsOutPath = statsPath_;
    serve::ServeServer server(service, options);
    server.start();
    std::thread loop([&server] { server.run(); });

    {
        TestClient client(socketPath_);
        client.send("{\"id\": 1, \"op\": \"ping\"}\n"
                    "{\"id\": 2, \"op\": \"ping\"}\r\n");
        JsonValue first = parseJson(client.recvLine());
        JsonValue second = parseJson(client.recvLine());
        EXPECT_EQ(first.at("id").asNumber(), 1.0);
        EXPECT_EQ(second.at("id").asNumber(), 2.0);
        EXPECT_TRUE(second.at("ok").asBool());
        client.send("{\"id\": 3, \"op\": \"shutdown\"}\n");
        JsonValue last = parseJson(client.recvLine());
        EXPECT_TRUE(last.at("ok").asBool());
    }
    loop.join();

    // The shutdown path wrote the stats snapshot atomically; it
    // parses and reflects the handled requests.
    std::ifstream in(statsPath_);
    ASSERT_TRUE(in.is_open());
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonValue report = parseJson(buf.str());
    EXPECT_EQ(report.at("schema").at("name").asString(),
              "gables-run-report");
    EXPECT_EQ(report.at("stats")
                  .at("serve.requests")
                  .at("value")
                  .asNumber(),
              3.0);
}

TEST_F(ServeServerTest, SequentialConnectionsShareTheCache)
{
    serve::ServeService service{serve::ServeOptions{}};
    serve::ServerOptions options;
    options.socketPath = socketPath_;
    serve::ServeServer server(service, options);
    server.start();
    std::thread loop([&server] { server.run(); });

    const std::string eval_req =
        "{\"id\": 1, \"op\": \"eval\", \"soc\": {\"name\": \"s\", "
        "\"ppeak_ops_per_sec\": 1e12, \"bpeak_bytes_per_sec\": 1e10, "
        "\"ips\": [{\"name\": \"cpu\", \"acceleration\": 1, "
        "\"bandwidth_bytes_per_sec\": 1e10}]}, \"usecase\": "
        "{\"name\": \"u\", \"work\": [{\"fraction\": 1, "
        "\"intensity_ops_per_byte\": 10}]}}\n";
    {
        TestClient a(socketPath_);
        a.send(eval_req);
        JsonValue doc = parseJson(a.recvLine());
        EXPECT_FALSE(
            doc.at("result").at("cache_hit").asBool());
    }
    {
        TestClient b(socketPath_);
        b.send(eval_req);
        JsonValue doc = parseJson(b.recvLine());
        EXPECT_TRUE(doc.at("result").at("cache_hit").asBool());
        b.send("{\"id\": 2, \"op\": \"shutdown\"}\n");
        b.recvLine();
    }
    loop.join();
    EXPECT_EQ(service.cache().hits(), 1u);
    EXPECT_EQ(service.cache().misses(), 1u);
}

TEST_F(ServeServerTest, StopFlagEndsTheLoop)
{
    serve::ServeService service{serve::ServeOptions{}};
    std::atomic<bool> stop{false};
    serve::ServerOptions options;
    options.socketPath = socketPath_;
    options.stopFlag = &stop;
    serve::ServeServer server(service, options);
    server.start();
    std::thread loop([&server] { server.run(); });
    stop.store(true);
    loop.join(); // returns promptly thanks to the poll timeout
    SUCCEED();
}

TEST_F(ServeServerTest, OversizedRequestLineDropsConnection)
{
    serve::ServeService service{serve::ServeOptions{}};
    serve::ServerOptions options;
    options.socketPath = socketPath_;
    options.maxLineBytes = 128;
    serve::ServeServer server(service, options);
    server.start();
    std::thread loop([&server] { server.run(); });

    {
        TestClient client(socketPath_);
        client.send(std::string(1024, 'x')); // no newline: buffered
        EXPECT_EQ(client.recvLine(), ""); // server closed on us
    }
    {
        // The daemon survives and still serves new connections.
        TestClient client(socketPath_);
        client.send("{\"id\": 1, \"op\": \"shutdown\"}\n");
        JsonValue doc = parseJson(client.recvLine());
        EXPECT_TRUE(doc.at("ok").asBool());
    }
    loop.join();
}

} // namespace
