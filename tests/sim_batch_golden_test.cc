/**
 * @file
 * Golden equivalence tests for analytic chunk batching: a batched
 * single-job run must be BIT-identical to the fully event-driven run
 * — every stats field, resource snapshot, telemetry value, and the
 * RunReport JSON (modulo the event-accounting counters, which
 * definitionally differ). See DESIGN.md section 10 for why the
 * replay preserves bit patterns rather than merely values.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sim/soc.h"
#include "soc/catalog.h"
#include "telemetry/report.h"
#include "telemetry/stats.h"
#include "util/json_reader.h"

namespace gables {
namespace sim {
namespace {

/** Counters that legitimately differ between batched and unbatched
 * runs: they count events and batched chunks, not simulation
 * results. */
bool
isEventAccountingStat(const std::string &name)
{
    return name == "sim.events_executed" ||
           name == "sim.events_pooled" ||
           name == "sim.batched_chunks";
}

void
expectBitEqual(double a, double b, const std::string &what)
{
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof ab);
    std::memcpy(&bb, &b, sizeof bb);
    EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void
expectStatsBitEqual(const SocRunStats &a, const SocRunStats &b)
{
    expectBitEqual(a.duration, b.duration, "duration");
    expectBitEqual(a.dramBytes, b.dramBytes, "dramBytes");
    ASSERT_EQ(a.engines.size(), b.engines.size());
    for (size_t i = 0; i < a.engines.size(); ++i) {
        const EngineRunStats &x = a.engines[i];
        const EngineRunStats &y = b.engines[i];
        EXPECT_EQ(x.name, y.name);
        expectBitEqual(x.startTime, y.startTime, x.name + ".start");
        expectBitEqual(x.endTime, y.endTime, x.name + ".end");
        expectBitEqual(x.ops, y.ops, x.name + ".ops");
        expectBitEqual(x.bytes, y.bytes, x.name + ".bytes");
        expectBitEqual(x.missBytes, y.missBytes,
                       x.name + ".missBytes");
    }
    ASSERT_EQ(a.resources.size(), b.resources.size());
    for (size_t i = 0; i < a.resources.size(); ++i) {
        const ResourceStats &x = a.resources[i];
        const ResourceStats &y = b.resources[i];
        EXPECT_EQ(x.name, y.name);
        expectBitEqual(x.bytesServed, y.bytesServed,
                       x.name + ".bytesServed");
        expectBitEqual(x.busyTime, y.busyTime, x.name + ".busyTime");
        expectBitEqual(x.utilization, y.utilization,
                       x.name + ".utilization");
    }
}

/** Run the same job batched (default) and with batching forced off;
 * the two SocRunStats must match bit for bit. */
void
checkJobEquivalence(SimSoc *soc,
                    const std::vector<SimSoc::JobSubmission> &jobs)
{
    soc->setChunkBatching(true);
    SocRunStats batched = soc->run(jobs);
    soc->setChunkBatching(false);
    SocRunStats unbatched = soc->run(jobs);
    soc->setChunkBatching(true);
    expectStatsBitEqual(batched, unbatched);
}

KernelJob
job(double intensity, double total_mib, double working_mib)
{
    KernelJob j;
    j.totalBytes = total_mib * 1024 * 1024;
    j.workingSetBytes = working_mib * 1024 * 1024;
    j.opsPerByte = intensity;
    return j;
}

TEST(SimBatchGolden, SingleIpStreamingRun)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    checkJobEquivalence(soc.get(), {{"IP0", job(0.7, 16.0, 16.0)}});
    checkJobEquivalence(soc.get(), {{"IP0", job(100.0, 8.0, 8.0)}});
}

TEST(SimBatchGolden, PartialHitRatioRun)
{
    // CPU on the 835 sim has a 2 MiB local memory: an 8 MiB working
    // set gives a fractional hit ratio, so arrivals complete out of
    // issue order (hits overtake older misses) — the ordering case
    // the batched replay's arrival heap exists for.
    auto soc = SocCatalog::snapdragon835Sim();
    checkJobEquivalence(soc.get(), {{"CPU", job(2.0, 16.0, 8.0)}});
    // Fully-hitting and fully-missing extremes.
    checkJobEquivalence(soc.get(), {{"CPU", job(2.0, 16.0, 1.0)}});
    checkJobEquivalence(soc.get(), {{"CPU", job(2.0, 16.0, 64.0)}});
}

TEST(SimBatchGolden, CoordinationRun)
{
    // The 835 GPU routes per-miss interrupts through the CPU's
    // compute resource; with a single GPU job that resource is still
    // exclusively driven by this job, so batching stays legal.
    auto soc = SocCatalog::snapdragon835Sim();
    KernelJob j = job(0.5, 16.0, 16.0);
    j.coordinationTime = 2e-6;
    checkJobEquivalence(soc.get(), {{"GPU", j}});
}

TEST(SimBatchGolden, BatchedChunksCounterSoloRun)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    telemetry::StatsRegistry registry;
    soc->attachTelemetry(&registry);

    KernelJob j = job(0.7, 16.0, 16.0);
    soc->run({{"IP0", j}});
    const telemetry::Counter *batched =
        registry.findCounter("sim.batched_chunks");
    ASSERT_NE(batched, nullptr);
    // 16 MiB at 4 KiB per request = 4096 chunks, all batched.
    EXPECT_DOUBLE_EQ(batched->value(), 4096.0);
    const telemetry::Counter *executed =
        registry.findCounter("sim.events_executed");
    ASSERT_NE(executed, nullptr);
    // The whole run collapses to the single batch-done event.
    EXPECT_DOUBLE_EQ(executed->value(), 1.0);

    soc->setChunkBatching(false);
    soc->run({{"IP0", j}});
    EXPECT_DOUBLE_EQ(
        registry.findCounter("sim.batched_chunks")->value(), 0.0);
    // Two events per chunk when fully event-driven.
    EXPECT_DOUBLE_EQ(executed->value(), 2.0 * 4096.0);
}

TEST(SimBatchGolden, ContendedRunNeverBatches)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry registry;
    soc->attachTelemetry(&registry);

    KernelJob j = job(1.0, 8.0, 8.0);
    SocRunStats with_default =
        soc->run({{"CPU", j}, {"GPU", j}});
    EXPECT_DOUBLE_EQ(
        registry.findCounter("sim.batched_chunks")->value(), 0.0);

    // And forcing batching off changes nothing for multi-IP runs.
    soc->setChunkBatching(false);
    SocRunStats forced_off = soc->run({{"CPU", j}, {"GPU", j}});
    expectStatsBitEqual(with_default, forced_off);
}

/** Compare two parsed JSON values recursively, skipping the
 * event-accounting stats keys. */
void
expectJsonEqual(const JsonValue &a, const JsonValue &b,
                const std::string &path)
{
    ASSERT_EQ(static_cast<int>(a.type()), static_cast<int>(b.type()))
        << path;
    switch (a.type()) {
      case JsonValue::Type::Null:
        break;
      case JsonValue::Type::Bool:
        EXPECT_EQ(a.asBool(), b.asBool()) << path;
        break;
      case JsonValue::Type::Number:
        expectBitEqual(a.asNumber(), b.asNumber(), path);
        break;
      case JsonValue::Type::String:
        EXPECT_EQ(a.asString(), b.asString()) << path;
        break;
      case JsonValue::Type::Array: {
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.size(); ++i)
            expectJsonEqual(a.at(i), b.at(i),
                            path + "[" + std::to_string(i) + "]");
        break;
      }
      case JsonValue::Type::Object: {
        ASSERT_EQ(a.size(), b.size()) << path;
        const auto &am = a.members();
        const auto &bm = b.members();
        for (size_t i = 0; i < am.size(); ++i) {
            ASSERT_EQ(am[i].first, bm[i].first) << path;
            if (isEventAccountingStat(am[i].first))
                continue;
            expectJsonEqual(am[i].second, bm[i].second,
                            path + "." + am[i].first);
        }
        break;
      }
    }
}

TEST(SimBatchGolden, RunReportIdenticalModuloEventCounters)
{
    auto make_report = [](bool batching) {
        auto soc = SocCatalog::snapdragon835Sim();
        telemetry::StatsRegistry registry;
        soc->attachTelemetry(&registry);
        soc->setChunkBatching(batching);
        SocRunStats stats = soc->run({{"CPU", job(2.0, 16.0, 8.0)}},
                                     8);

        telemetry::RunReport report("sim_batch_golden_test",
                                    soc->name());
        report.setDuration(stats.duration);
        for (const EngineRunStats &e : stats.engines)
            report.addEngine({e.name, e.ops, e.bytes, e.missBytes,
                              e.achievedOpsRate()});
        for (const ResourceStats &r : stats.resources)
            report.addResource({r.name, r.bytesServed, r.busyTime,
                                r.utilization});
        report.setRegistry(&registry);
        std::ostringstream out;
        report.write(out);
        return out.str();
    };

    std::string batched = make_report(true);
    std::string unbatched = make_report(false);
    // The reports differ only in the event-accounting counters.
    EXPECT_NE(batched, unbatched);
    expectJsonEqual(parseJson(batched), parseJson(unbatched),
                    "report");
}

} // namespace
} // namespace sim
} // namespace gables
