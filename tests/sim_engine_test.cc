/**
 * @file
 * Behavioural tests of the simulated IP engine and SoC: the measured
 * throughput must trace a roofline, contention must share bandwidth,
 * and coordination overhead must charge the coordinator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/logging.h"
#include "util/units.h"

namespace gables {
namespace sim {
namespace {

KernelJob
job(double intensity, double total_mb = 64.0)
{
    KernelJob j;
    j.workingSetBytes = total_mb * 1e6;
    j.totalBytes = total_mb * 1e6;
    j.opsPerByte = intensity;
    return j;
}

TEST(Engine, ComputeBoundAtHighIntensity)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    SocRunStats stats = soc->run({{"IP0", job(100.0)}});
    EXPECT_NEAR(stats.engine("IP0").achievedOpsRate(), 10e9,
                10e9 * 0.02);
}

TEST(Engine, BandwidthBoundAtLowIntensity)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    SocRunStats stats = soc->run({{"IP0", job(0.1)}});
    // Link (20 GB/s) is the narrowest hop: ops = 20e9 * 0.1 = 2e9.
    EXPECT_NEAR(stats.engine("IP0").achievedOpsRate(), 2e9,
                2e9 * 0.02);
    EXPECT_NEAR(stats.engine("IP0").achievedByteRate(), 20e9,
                20e9 * 0.02);
}

TEST(Engine, DramBoundWhenLinkWider)
{
    auto soc = SocCatalog::simpleSim(100e9, 80e9, 30e9);
    SocRunStats stats = soc->run({{"IP0", job(0.1)}});
    EXPECT_NEAR(stats.engine("IP0").achievedByteRate(), 30e9,
                30e9 * 0.02);
}

TEST(Engine, RooflineKneeNearRidgePoint)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    // Ridge = 10e9 / 20e9 = 0.5 ops/byte.
    SocRunStats below = soc->run({{"IP0", job(0.25)}});
    SocRunStats above = soc->run({{"IP0", job(1.0)}});
    EXPECT_NEAR(below.engine("IP0").achievedOpsRate(), 5e9,
                5e9 * 0.02);
    EXPECT_NEAR(above.engine("IP0").achievedOpsRate(), 10e9,
                10e9 * 0.02);
}

TEST(Engine, ThroughputMatchesRooflineAcrossIntensities)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    for (double i : {0.05, 0.2, 0.5, 2.0, 8.0}) {
        SocRunStats stats = soc->run({{"IP0", job(i)}});
        double expected = std::min(10e9, 20e9 * i);
        EXPECT_NEAR(stats.engine("IP0").achievedOpsRate(), expected,
                    expected * 0.03)
            << "intensity " << i;
    }
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    SocRunStats a = soc->run({{"IP0", job(0.7)}});
    SocRunStats b = soc->run({{"IP0", job(0.7)}});
    EXPECT_DOUBLE_EQ(a.duration, b.duration);
    EXPECT_DOUBLE_EQ(a.engine("IP0").ops, b.engine("IP0").ops);
}

TEST(Engine, ConservationOfBytes)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    SocRunStats stats = soc->run({{"IP0", job(1.0, 16.0)}});
    const EngineRunStats &e = stats.engine("IP0");
    // No local memory on the simple SoC: all bytes miss to DRAM.
    EXPECT_DOUBLE_EQ(e.bytes, e.missBytes);
    EXPECT_DOUBLE_EQ(e.bytes, 16e6);
    EXPECT_DOUBLE_EQ(stats.dramBytes, e.missBytes);
    // Ops = bytes * intensity.
    EXPECT_DOUBLE_EQ(e.ops, 16e6);
}

TEST(Engine, ContentionSharesDram)
{
    // Two identical engines on one 30 GB/s DRAM, each with a 25 GB/s
    // link, streaming (I = 0.01, effectively pure bandwidth).
    auto soc = std::make_unique<SimSoc>("pair");
    soc->setDram(30e9, 100e-9);
    BandwidthResource *fabric = soc->addFabric("f", 120e9, 20e-9);
    for (const char *name : {"A", "B"}) {
        IpEngineConfig cfg;
        cfg.name = name;
        cfg.opsPerSec = 100e9;
        cfg.maxOutstanding = 8;
        SimSoc::EngineAttachment at;
        at.linkBandwidth = 25e9;
        at.fabric = fabric;
        soc->addEngine(cfg, at);
    }
    SocRunStats stats =
        soc->run({{"A", job(0.01, 64.0)}, {"B", job(0.01, 64.0)}});
    double rate_a = stats.engine("A").achievedMissRate();
    double rate_b = stats.engine("B").achievedMissRate();
    // Fair sharing: each gets about half of DRAM.
    EXPECT_NEAR(rate_a, 15e9, 15e9 * 0.05);
    EXPECT_NEAR(rate_b, 15e9, 15e9 * 0.05);
    // Combined throughput saturates DRAM.
    double combined = stats.dramBytes / stats.duration;
    EXPECT_NEAR(combined, 30e9, 30e9 * 0.03);
}

TEST(Engine, LocalMemoryRaisesEffectiveBandwidth)
{
    auto soc = std::make_unique<SimSoc>("cached");
    soc->setDram(30e9, 100e-9);
    BandwidthResource *fabric = soc->addFabric("f", 120e9, 20e-9);
    IpEngineConfig cfg;
    cfg.name = "CPU";
    cfg.opsPerSec = 1000e9; // never compute bound
    SimSoc::EngineAttachment at;
    at.linkBandwidth = 15e9;
    at.fabric = fabric;
    at.localCapacity = 2.0 * kMiB;
    at.localBandwidth = 60e9;
    soc->addEngine(cfg, at);

    // Working set fits in the 2 MiB local memory: local bandwidth.
    KernelJob small = job(0.01);
    small.workingSetBytes = 1.0 * kMiB;
    small.totalBytes = 64e6;
    SocRunStats fits = soc->run({{"CPU", small}});
    EXPECT_NEAR(fits.engine("CPU").achievedByteRate(), 60e9,
                60e9 * 0.05);
    EXPECT_DOUBLE_EQ(fits.engine("CPU").missBytes, 0.0);

    // Working set far exceeds it: link bandwidth.
    SocRunStats spills = soc->run({{"CPU", job(0.01, 64.0)}});
    EXPECT_NEAR(spills.engine("CPU").achievedByteRate(), 15e9,
                15e9 * 0.10);
}

TEST(Engine, CoordinationChargesCoordinator)
{
    auto soc = SocCatalog::snapdragon835Sim();
    // GPU job with per-request coordination: the stream rate is
    // capped by requestBytes / coordinationTime = 4096B / 1us
    // ~ 4.1 GB/s, far below the 24.4 GB/s link.
    KernelJob j = job(0.01, 64.0);
    j.coordinationTime = 1e-6;
    SocRunStats stats = soc->run({{"GPU", j}});
    EXPECT_NEAR(stats.engine("GPU").achievedMissRate(), 4.1e9,
                4.1e9 * 0.05);
    // Without coordination the GPU streams at link rate.
    SocRunStats free_run = soc->run({{"GPU", job(0.01, 64.0)}});
    EXPECT_NEAR(free_run.engine("GPU").achievedMissRate(), 24.4e9,
                24.4e9 * 0.05);
}

TEST(Engine, CoordinationRequiresWiredCoordinator)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    KernelJob j = job(1.0);
    j.coordinationTime = 1e-6;
    EXPECT_THROW(soc->run({{"IP0", j}}), FatalError);
}

TEST(Engine, MemoryLevelParallelismCoversLatency)
{
    // Little's law in miniature: with one outstanding request and a
    // long DRAM latency, the engine is latency-bound well below the
    // bandwidth roofline; raising MLP recovers the full stream rate.
    auto build = [](int mlp) {
        auto soc = std::make_unique<SimSoc>("lat");
        soc->setDram(30e9, 2e-6); // 2 us access latency
        BandwidthResource *fabric =
            soc->addFabric("f", 120e9, 20e-9);
        IpEngineConfig cfg;
        cfg.name = "X";
        cfg.opsPerSec = 1000e9;
        cfg.requestBytes = 4096.0;
        cfg.maxOutstanding = mlp;
        SimSoc::EngineAttachment at;
        at.linkBandwidth = 25e9;
        at.fabric = fabric;
        soc->addEngine(cfg, at);
        return soc;
    };
    KernelJob j = job(0.01, 32.0);

    auto starved = build(1);
    double rate_mlp1 =
        starved->run({{"X", j}}).engine("X").achievedByteRate();
    // ~one 4 KiB line per ~2.2 us round trip ~ 1.9 GB/s.
    EXPECT_LT(rate_mlp1, 3e9);

    auto covered = build(32);
    double rate_mlp32 =
        covered->run({{"X", j}}).engine("X").achievedByteRate();
    EXPECT_NEAR(rate_mlp32, 25e9, 25e9 * 0.05);
    EXPECT_GT(rate_mlp32, rate_mlp1 * 8.0);
}

TEST(Engine, RejectsBadJobs)
{
    auto soc = SocCatalog::simpleSim(10e9, 20e9, 40e9);
    KernelJob bad = job(1.0);
    bad.totalBytes = 0.0;
    EXPECT_THROW(soc->run({{"IP0", bad}}), FatalError);
    KernelJob bad2 = job(1.0);
    bad2.opsPerByte = 0.0;
    EXPECT_THROW(soc->run({{"IP0", bad2}}), FatalError);
}

} // namespace
} // namespace sim
} // namespace gables
