/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "util/logging.h"
#include "util/rng.h"

namespace gables {
namespace sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, FifoAmongSimultaneousEvents)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] {
        ++fired;
        eq.schedule(2.0, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    double when = -1.0;
    eq.schedule(5.0, [&] {
        eq.scheduleAfter(2.5, [&] { when = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(when, 7.5);
}

TEST(EventQueue, PastSchedulingRejected)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(1.0, [] {}), FatalError);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] { ++fired; });
    eq.schedule(10.0, [&] { ++fired; });
    eq.runUntil(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<double>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(1.0, [] {});
    eq.run();
    eq.schedule(9.0, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_DOUBLE_EQ(eq.now(), 0.0);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
    // Time zero is schedulable again after reset.
    EXPECT_NO_THROW(eq.schedule(0.5, [] {}));
}

TEST(EventQueue, EmptyRunIsNoop)
{
    EventQueue eq;
    EXPECT_DOUBLE_EQ(eq.run(), 0.0);
    EXPECT_TRUE(eq.empty());
}

/**
 * Property test: for random schedules — heavy ties, wide and narrow
 * time ranges, events scheduled from inside callbacks — the queue
 * must execute in exactly the order of a stable sort by time of the
 * insertion sequence (i.e. (when, insertion index) order).
 */
TEST(EventQueue, PropertyMatchesStableSortReference)
{
    Rng rng(0xE7E47u);
    for (int trial = 0; trial < 50; ++trial) {
        // Mix scales across trials: some schedules span nanoseconds,
        // some span millions of seconds (stresses epoch rebasing),
        // some collapse onto a handful of tied instants.
        double span = rng.logUniform(1e-9, 1e6);
        int distinct = static_cast<int>(rng.uniformInt(1, 40));
        int initial = static_cast<int>(rng.uniformInt(1, 120));
        int nested_per = static_cast<int>(rng.uniformInt(0, 3));

        // (when, insertion index) of every scheduled event, in
        // schedule order; nested events are appended as they are
        // scheduled, exactly as the queue assigns sequence numbers.
        std::vector<std::pair<double, size_t>> ref;
        std::vector<size_t> fired;

        EventQueue eq;
        Rng nest_rng(0xBADC0DEu + static_cast<uint64_t>(trial));
        auto schedule_top = [&](double when) {
            size_t id = ref.size();
            ref.push_back({when, id});
            eq.schedule(when, [&, id, when] {
                fired.push_back(id);
                // Only the first generation nests further events.
                for (int n = 0; n < nested_per; ++n) {
                    // Nested events land at or after the current
                    // time, sometimes exactly at it (a tie with the
                    // running instant).
                    double delta =
                        nest_rng.uniform() < 0.3
                            ? 0.0
                            : nest_rng.uniform(0.0, span * 0.1);
                    size_t nid = ref.size();
                    ref.push_back({when + delta, nid});
                    eq.schedule(when + delta,
                                [&fired, nid] { fired.push_back(nid); });
                }
            });
        };
        for (int i = 0; i < initial; ++i) {
            double when =
                span *
                static_cast<double>(rng.uniformInt(0, distinct)) /
                static_cast<double>(distinct);
            schedule_top(when);
        }
        eq.run();

        ASSERT_EQ(fired.size(), ref.size());
        std::vector<std::pair<double, size_t>> expect = ref;
        std::stable_sort(expect.begin(), expect.end(),
                         [](const std::pair<double, size_t> &a,
                            const std::pair<double, size_t> &b) {
                             return a.first < b.first;
                         });
        for (size_t i = 0; i < expect.size(); ++i) {
            ASSERT_EQ(fired[i], expect[i].second)
                << "trial " << trial << " position " << i;
        }
    }
}

/** runUntil must stop exactly at the deadline boundary: events at
 * the deadline fire, events just after stay queued, and interleaved
 * runUntil/run calls preserve global order. */
TEST(EventQueue, PropertyRunUntilBoundary)
{
    Rng rng(0x5EEDu);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue eq;
        std::vector<double> fired;
        int n = static_cast<int>(rng.uniformInt(5, 60));
        std::vector<double> times;
        for (int i = 0; i < n; ++i) {
            double t = rng.uniform(0.0, 100.0);
            if (rng.uniform() < 0.3)
                t = std::floor(t); // land some exactly on deadlines
            times.push_back(t);
            eq.schedule(t, [&fired, t] { fired.push_back(t); });
        }
        std::sort(times.begin(), times.end());

        for (double deadline = 10.0; deadline <= 100.0;
             deadline += 10.0) {
            eq.runUntil(deadline);
            // Everything at or before the deadline has fired.
            size_t expect_count = static_cast<size_t>(
                std::upper_bound(times.begin(), times.end(),
                                 deadline) -
                times.begin());
            ASSERT_EQ(fired.size(), expect_count)
                << "trial " << trial << " deadline " << deadline;
            EXPECT_DOUBLE_EQ(eq.now(), deadline);
        }
        eq.run();
        ASSERT_EQ(fired.size(), times.size());
        EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    }
}

/** Back-to-back runs on one queue reuse pooled event storage: after
 * the first run has sized the pool, reset() + an identical schedule
 * pattern recycles storage for (nearly) every event. */
TEST(EventQueue, ResetRetainsPooledStorage)
{
    EventQueue eq;
    auto load = [&eq] {
        for (int i = 0; i < 200; ++i)
            eq.schedule(static_cast<double>(i % 17), [] {});
        eq.run();
    };
    load();
    eq.reset();
    uint64_t before = eq.eventsPooled();
    EXPECT_EQ(before, 0u); // reset() zeroes the stat...
    load();
    // ...but the second pass reuses the first pass's capacity.
    EXPECT_GE(eq.eventsPooled(), 150u);
    EXPECT_EQ(eq.eventsExecuted(), 200u);
}

} // namespace
} // namespace sim
} // namespace gables
