/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "util/logging.h"

namespace gables {
namespace sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, FifoAmongSimultaneousEvents)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(1.0, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] {
        ++fired;
        eq.schedule(2.0, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue eq;
    double when = -1.0;
    eq.schedule(5.0, [&] {
        eq.scheduleAfter(2.5, [&] { when = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(when, 7.5);
}

TEST(EventQueue, PastSchedulingRejected)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(1.0, [] {}), FatalError);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] { ++fired; });
    eq.schedule(10.0, [&] { ++fired; });
    eq.runUntil(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventCount)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<double>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(1.0, [] {});
    eq.run();
    eq.schedule(9.0, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_DOUBLE_EQ(eq.now(), 0.0);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
    // Time zero is schedulable again after reset.
    EXPECT_NO_THROW(eq.schedule(0.5, [] {}));
}

TEST(EventQueue, EmptyRunIsNoop)
{
    EventQueue eq;
    EXPECT_DOUBLE_EQ(eq.run(), 0.0);
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace sim
} // namespace gables
