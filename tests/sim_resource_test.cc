/**
 * @file
 * Unit tests for the FIFO bandwidth server and memory path/local
 * memory models.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.h"
#include "sim/resource.h"
#include "util/logging.h"

namespace gables {
namespace sim {
namespace {

TEST(Resource, IdleServerServesImmediately)
{
    BandwidthResource r("r", 100.0); // 100 B/s
    EXPECT_DOUBLE_EQ(r.acquire(0.0, 50.0), 0.5);
    EXPECT_DOUBLE_EQ(r.busyUntil(), 0.5);
}

TEST(Resource, LatencyAddsAfterService)
{
    BandwidthResource r("r", 100.0, 0.25);
    EXPECT_DOUBLE_EQ(r.acquire(0.0, 50.0), 0.75);
    // busyUntil excludes the latency (pipelined behind service).
    EXPECT_DOUBLE_EQ(r.busyUntil(), 0.5);
}

TEST(Resource, BackToBackRequestsQueue)
{
    BandwidthResource r("r", 100.0);
    EXPECT_DOUBLE_EQ(r.acquire(0.0, 100.0), 1.0);
    // Arrives at 0.2 but must wait for the first transfer.
    EXPECT_DOUBLE_EQ(r.acquire(0.2, 100.0), 2.0);
}

TEST(Resource, LateArrivalStartsAtArrival)
{
    BandwidthResource r("r", 100.0);
    r.acquire(0.0, 100.0); // busy until 1.0
    EXPECT_DOUBLE_EQ(r.acquire(5.0, 100.0), 6.0);
}

TEST(Resource, StatsAccumulate)
{
    BandwidthResource r("r", 100.0);
    r.acquire(0.0, 100.0);
    r.acquire(0.0, 50.0);
    EXPECT_DOUBLE_EQ(r.bytesServed(), 150.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 1.5);
    EXPECT_EQ(r.requestsServed(), 2u);
    EXPECT_DOUBLE_EQ(r.utilization(3.0), 0.5);
    EXPECT_DOUBLE_EQ(r.utilization(0.0), 0.0);
}

TEST(Resource, AcquireServiceBooksFixedTime)
{
    BandwidthResource r("r", 1e9);
    EXPECT_DOUBLE_EQ(r.acquireService(0.0, 0.5), 0.5);
    EXPECT_DOUBLE_EQ(r.acquireService(0.0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 1.0);
}

TEST(Resource, ResetClearsState)
{
    BandwidthResource r("r", 100.0);
    r.acquire(0.0, 100.0);
    r.reset();
    EXPECT_DOUBLE_EQ(r.busyUntil(), 0.0);
    EXPECT_DOUBLE_EQ(r.bytesServed(), 0.0);
    EXPECT_EQ(r.requestsServed(), 0u);
}

TEST(Resource, InvalidConstruction)
{
    EXPECT_THROW(BandwidthResource("bad", 0.0), FatalError);
    EXPECT_THROW(BandwidthResource("bad", 1.0, -0.1), FatalError);
}

TEST(MemoryPath, ChainsHops)
{
    BandwidthResource link("link", 100.0);
    BandwidthResource dram("dram", 50.0, 0.1);
    MemoryPath path;
    path.addHop(&link);
    path.addHop(&dram);
    // Link: 0 -> 1.0; DRAM: 1.0 -> 3.0 (+0.1 latency).
    EXPECT_DOUBLE_EQ(path.request(0.0, 100.0), 3.1);
    EXPECT_DOUBLE_EQ(path.unloadedLatency(), 0.1);
}

TEST(MemoryPath, SharedHopCreatesContention)
{
    BandwidthResource link_a("a", 1000.0);
    BandwidthResource link_b("b", 1000.0);
    BandwidthResource dram("dram", 100.0);
    MemoryPath pa, pb;
    pa.addHop(&link_a);
    pa.addHop(&dram);
    pb.addHop(&link_b);
    pb.addHop(&dram);
    double t_a = pa.request(0.0, 100.0); // dram 0.1 -> 1.1
    double t_b = pb.request(0.0, 100.0); // dram busy until 1.1 -> 2.1
    EXPECT_DOUBLE_EQ(t_a, 1.1);
    EXPECT_DOUBLE_EQ(t_b, 2.1);
}

TEST(LocalMemory, FractionalFitHitRatio)
{
    LocalMemory mem("L2", 1024.0, 1e9, 0.0);
    mem.setWorkingSet(4096.0);
    EXPECT_DOUBLE_EQ(mem.hitRatio(), 0.25);
    mem.setWorkingSet(512.0);
    EXPECT_DOUBLE_EQ(mem.hitRatio(), 1.0);
}

TEST(LocalMemory, DeterministicInterleave)
{
    LocalMemory mem("L2", 1024.0, 1e9, 0.0);
    mem.setWorkingSet(4096.0); // 25% hits
    int hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += mem.nextIsHit() ? 1 : 0;
    EXPECT_EQ(hits, 250);
}

TEST(LocalMemory, AllHitsWhenFits)
{
    LocalMemory mem("L2", 1 << 20, 1e9, 0.0);
    mem.setWorkingSet(1024.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(mem.nextIsHit());
}

TEST(LocalMemory, NoHitsWithZeroCapacity)
{
    LocalMemory mem("none", 0.0, 1e9, 0.0);
    mem.setWorkingSet(1024.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(mem.nextIsHit());
}

} // namespace
} // namespace sim
} // namespace gables
