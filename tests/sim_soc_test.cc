/**
 * @file
 * Tests of SimSoc construction rules and run statistics.
 */

#include <gtest/gtest.h>

#include "sim/soc.h"
#include "soc/catalog.h"
#include "util/logging.h"

namespace gables {
namespace sim {
namespace {

TEST(SimSoc, RequiresDramBeforeEngines)
{
    SimSoc soc("s");
    IpEngineConfig cfg;
    cfg.name = "X";
    SimSoc::EngineAttachment at;
    at.linkBandwidth = 1e9;
    EXPECT_THROW(soc.addEngine(cfg, at), FatalError);
}

TEST(SimSoc, RejectsDoubleDram)
{
    SimSoc soc("s");
    soc.setDram(10e9, 0.0);
    EXPECT_THROW(soc.setDram(10e9, 0.0), FatalError);
}

TEST(SimSoc, RejectsDuplicateEngineNames)
{
    SimSoc soc("s");
    soc.setDram(10e9, 0.0);
    IpEngineConfig cfg;
    cfg.name = "X";
    SimSoc::EngineAttachment at;
    at.linkBandwidth = 1e9;
    soc.addEngine(cfg, at);
    EXPECT_THROW(soc.addEngine(cfg, at), FatalError);
}

TEST(SimSoc, UnknownEngineLookupFails)
{
    SimSoc soc("s");
    EXPECT_THROW(soc.engine("ghost"), FatalError);
}

TEST(SimSoc, ForeignFabricParentRejected)
{
    SimSoc a("a"), b("b");
    a.setDram(10e9, 0.0);
    b.setDram(10e9, 0.0);
    BandwidthResource *fb = b.addFabric("fb", 1e9, 0.0);
    EXPECT_THROW(a.addFabric("fa", 1e9, 0.0, fb), FatalError);
}

TEST(SimSoc, EmptyRunRejected)
{
    auto soc = SocCatalog::simpleSim(1e9, 1e9, 1e9);
    EXPECT_THROW(soc->run({}), FatalError);
}

TEST(SimSoc, ResourceStatsIncludeAllComponents)
{
    auto soc = SocCatalog::snapdragon835Sim();
    KernelJob j;
    j.workingSetBytes = 64e6;
    j.totalBytes = 64e6;
    j.opsPerByte = 1.0;
    SocRunStats stats = soc->run({{"CPU", j}});
    // DRAM + 2 fabrics + 3 links + 3 compute resources = 9.
    EXPECT_EQ(stats.resources.size(), 9u);
    bool saw_dram = false;
    for (const ResourceStats &r : stats.resources) {
        if (r.name == "DRAM") {
            saw_dram = true;
            EXPECT_GT(r.bytesServed, 0.0);
            EXPECT_GT(r.utilization, 0.0);
            EXPECT_LE(r.utilization, 1.0);
        }
    }
    EXPECT_TRUE(saw_dram);
}

TEST(SimSoc, RunsAreIndependent)
{
    auto soc = SocCatalog::snapdragon835Sim();
    KernelJob j;
    j.workingSetBytes = 64e6;
    j.totalBytes = 64e6;
    j.opsPerByte = 4.0;
    SocRunStats first = soc->run({{"GPU", j}});
    SocRunStats second = soc->run({{"GPU", j}});
    EXPECT_DOUBLE_EQ(first.duration, second.duration);
    EXPECT_DOUBLE_EQ(first.dramBytes, second.dramBytes);
}

TEST(SimSoc, AggregateOpsRateSumsEngines)
{
    auto soc = SocCatalog::snapdragon835Sim();
    KernelJob j;
    j.workingSetBytes = 32e6;
    j.totalBytes = 32e6;
    j.opsPerByte = 64.0;
    SocRunStats stats = soc->run({{"CPU", j}, {"GPU", j}});
    double total_ops =
        stats.engine("CPU").ops + stats.engine("GPU").ops;
    EXPECT_NEAR(stats.aggregateOpsRate(), total_ops / stats.duration,
                1e-6);
    EXPECT_THROW(stats.engine("DSP"), FatalError); // no DSP job ran
}

TEST(SimSoc, DramBytesEqualSumOfEngineMisses)
{
    auto soc = SocCatalog::snapdragon835Sim();
    KernelJob j;
    j.workingSetBytes = 64e6;
    j.totalBytes = 64e6;
    j.opsPerByte = 2.0;
    SocRunStats stats =
        soc->run({{"CPU", j}, {"GPU", j}, {"DSP", j}});
    double miss_sum = 0.0;
    for (const EngineRunStats &e : stats.engines)
        miss_sum += e.missBytes;
    EXPECT_DOUBLE_EQ(stats.dramBytes, miss_sum);
}

TEST(SimSoc, HierarchicalFabricChainBindsAtNarrowestHop)
{
    // Engine -> child fabric -> parent fabric -> DRAM: the
    // narrowest hop on the chain sets the streaming rate.
    SimSoc soc("chain");
    soc.setDram(50e9, 100e-9);
    BandwidthResource *parent = soc.addFabric("parent", 8e9, 20e-9);
    BandwidthResource *child =
        soc.addFabric("child", 40e9, 20e-9, parent);

    IpEngineConfig cfg;
    cfg.name = "X";
    cfg.opsPerSec = 1000e9; // never compute bound
    cfg.maxOutstanding = 8;
    SimSoc::EngineAttachment at;
    at.linkBandwidth = 30e9;
    at.fabric = child;
    soc.addEngine(cfg, at);

    KernelJob job;
    job.workingSetBytes = 32e6;
    job.totalBytes = 32e6;
    job.opsPerByte = 0.01;
    SocRunStats stats = soc.run({{"X", job}});
    // The 8 GB/s parent fabric binds, not the 30 GB/s link, the
    // 40 GB/s child, or the 50 GB/s DRAM.
    EXPECT_NEAR(stats.engine("X").achievedByteRate(), 8e9,
                8e9 * 0.03);
    // And both fabrics served every byte.
    double child_bytes = 0.0, parent_bytes = 0.0;
    for (const ResourceStats &r : stats.resources) {
        if (r.name == "child")
            child_bytes = r.bytesServed;
        if (r.name == "parent")
            parent_bytes = r.bytesServed;
    }
    EXPECT_DOUBLE_EQ(child_bytes, 32e6);
    EXPECT_DOUBLE_EQ(parent_bytes, 32e6);
}

} // namespace
} // namespace sim
} // namespace gables
