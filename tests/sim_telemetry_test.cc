/**
 * @file
 * Tests of the telemetry instrumentation threaded through the
 * simulator: per-resource wait/service accounting under contention,
 * queue-depth sampling, epoch time series, engine counters, the
 * bit-identical-when-detached invariant, and RunReport output.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/resource.h"
#include "sim/soc.h"
#include "soc/catalog.h"
#include "telemetry/report.h"
#include "telemetry/stats.h"
#include "util/json_reader.h"
#include "util/logging.h"

namespace gables {
namespace sim {
namespace {

/** Two back-to-back arrivals: the second must queue behind the first. */
TEST(ResourceTelemetry, WaitTimeUnderContention)
{
    telemetry::StatsRegistry reg;
    BandwidthResource r("bus", 1e9); // 1 GB/s, no latency
    r.attachTelemetry(&reg);

    // First request: 1000 bytes at t=0 -> served [0, 1e-6], no wait.
    EXPECT_DOUBLE_EQ(r.acquire(0.0, 1000.0), 1e-6);
    // Second arrives at 0.4us while the first is in service: waits
    // 0.6us, served [1e-6, 2e-6].
    EXPECT_DOUBLE_EQ(r.acquire(0.4e-6, 1000.0), 2e-6);

    const telemetry::Distribution *wait = reg.findDistribution("bus.wait_time");
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(wait->count(), 2u);
    EXPECT_DOUBLE_EQ(wait->min(), 0.0);
    EXPECT_NEAR(wait->max(), 0.6e-6, 1e-18);

    const telemetry::Distribution *svc = reg.findDistribution("bus.service_time");
    ASSERT_NE(svc, nullptr);
    EXPECT_NEAR(svc->mean(), 1e-6, 1e-18);

    // Queue depth at arrival counts the request just booked: 1 for
    // the first (nothing ahead of it), 2 for the second.
    const telemetry::Distribution *depth = reg.findDistribution("bus.queue_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_DOUBLE_EQ(depth->min(), 1.0);
    EXPECT_DOUBLE_EQ(depth->max(), 2.0);

    EXPECT_DOUBLE_EQ(reg.findCounter("bus.requests")->value(), 2.0);
    EXPECT_DOUBLE_EQ(reg.findCounter("bus.bytes")->value(), 2000.0);
}

TEST(ResourceTelemetry, QueueDrainsBetweenBursts)
{
    telemetry::StatsRegistry reg;
    BandwidthResource r("bus", 1e9);
    r.attachTelemetry(&reg);
    r.acquire(0.0, 1000.0);
    r.acquire(0.0, 1000.0);
    r.acquire(0.0, 1000.0);
    // All three are complete by 3us; a request at 10us sees an empty
    // queue again (depth 1: just itself).
    r.acquire(10e-6, 1000.0);
    const telemetry::Distribution *depth = reg.findDistribution("bus.queue_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->count(), 4u);
    EXPECT_DOUBLE_EQ(depth->max(), 3.0);
    EXPECT_DOUBLE_EQ(depth->min(), 1.0);
    // Histogram saw the same samples.
    const telemetry::Histogram *hist = reg.findHistogram("bus.queue_depth_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), 4u);
}

TEST(ResourceTelemetry, ServiceLogOnlyWhenAttached)
{
    BandwidthResource r("bus", 1e9);
    r.acquire(0.0, 1000.0);
    EXPECT_TRUE(r.serviceLog().empty());

    telemetry::StatsRegistry reg;
    r.attachTelemetry(&reg);
    r.acquire(5e-6, 2000.0);
    ASSERT_EQ(r.serviceLog().size(), 1u);
    EXPECT_DOUBLE_EQ(r.serviceLog()[0].start, 5e-6);
    EXPECT_NEAR(r.serviceLog()[0].duration, 2e-6, 1e-18);
    EXPECT_DOUBLE_EQ(r.serviceLog()[0].bytes, 2000.0);

    r.attachTelemetry(nullptr);
    r.reset();
    r.acquire(0.0, 1000.0);
    EXPECT_TRUE(r.serviceLog().empty());
}

/** Attaching telemetry must not perturb booking arithmetic. */
TEST(ResourceTelemetry, BookingIdenticalWithAndWithoutTelemetry)
{
    telemetry::StatsRegistry reg;
    BandwidthResource bare("bus", 3e9, 2e-9);
    BandwidthResource inst("bus", 3e9, 2e-9);
    inst.attachTelemetry(&reg);
    double t_bare = 0.0, t_inst = 0.0;
    for (int i = 0; i < 50; ++i) {
        double arrival = i * 0.7e-9;
        double bytes = 100.0 + 37.0 * (i % 5);
        t_bare = bare.acquire(arrival, bytes);
        t_inst = inst.acquire(arrival, bytes);
        ASSERT_EQ(t_bare, t_inst);
    }
    EXPECT_EQ(bare.busyUntil(), inst.busyUntil());
    EXPECT_EQ(bare.busyTime(), inst.busyTime());
}

/** Full-SoC runs are bit-identical with telemetry attached or not. */
TEST(SocTelemetry, DetachedRunBitIdentical)
{
    KernelJob j;
    j.workingSetBytes = 32e6;
    j.totalBytes = 32e6;
    j.opsPerByte = 2.0;

    auto plain = SocCatalog::snapdragon835Sim();
    SocRunStats a = plain->run({{"CPU", j}, {"GPU", j}});

    auto instrumented = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    instrumented->attachTelemetry(&reg);
    SocRunStats b = instrumented->run({{"CPU", j}, {"GPU", j}}, 8);

    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    ASSERT_EQ(a.engines.size(), b.engines.size());
    for (size_t i = 0; i < a.engines.size(); ++i) {
        EXPECT_EQ(a.engines[i].ops, b.engines[i].ops);
        EXPECT_EQ(a.engines[i].endTime, b.engines[i].endTime);
        EXPECT_EQ(a.engines[i].missBytes, b.engines[i].missBytes);
    }
}

TEST(SocTelemetry, EpochSeriesShapeAndBounds)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    soc->attachTelemetry(&reg);
    KernelJob j;
    j.workingSetBytes = 32e6;
    j.totalBytes = 32e6;
    j.opsPerByte = 1.0;
    const int epochs = 16;
    SocRunStats stats = soc->run({{"CPU", j}}, epochs);

    const telemetry::TimeSeries *util = reg.findTimeSeries("DRAM.utilization");
    ASSERT_NE(util, nullptr);
    ASSERT_EQ(util->size(), static_cast<size_t>(epochs));
    double busy_sum = 0.0;
    for (size_t i = 0; i < util->size(); ++i) {
        EXPECT_GE(util->values()[i], 0.0);
        EXPECT_LE(util->values()[i], 1.0);
        EXPECT_GT(util->times()[i], 0.0);
        EXPECT_LT(util->times()[i], stats.duration);
        busy_sum += util->values()[i] * (stats.duration / epochs);
    }
    // Epoch-binned busy time reconstructs the total busy time.
    double dram_busy = 0.0;
    for (const ResourceStats &r : stats.resources)
        if (r.name == "DRAM")
            dram_busy = r.busyTime;
    EXPECT_NEAR(busy_sum, dram_busy, 1e-9 + 1e-6 * dram_busy);

    const telemetry::TimeSeries *bw = reg.findTimeSeries("DRAM.bw_bytes");
    ASSERT_NE(bw, nullptr);
    EXPECT_EQ(bw->size(), static_cast<size_t>(epochs));
    const telemetry::TimeSeries *ops = reg.findTimeSeries("CPU.ops_rate");
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->size(), static_cast<size_t>(epochs));
}

TEST(SocTelemetry, EpochsWithoutRegistryIsFatal)
{
    auto soc = SocCatalog::snapdragon835Sim();
    KernelJob j;
    EXPECT_THROW(soc->run({{"CPU", j}}, 4), FatalError);
    EXPECT_THROW(soc->run({{"CPU", j}}, -1), FatalError);
}

TEST(SocTelemetry, EngineCountersConsistentWithStats)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    soc->attachTelemetry(&reg);
    KernelJob j;
    j.workingSetBytes = 8e6;
    j.totalBytes = 16e6;
    j.opsPerByte = 4.0;
    SocRunStats stats = soc->run({{"GPU", j}});

    const EngineRunStats &g = stats.engine("GPU");
    double issued = reg.findCounter("GPU.chunks_issued")->value();
    double computed = reg.findCounter("GPU.chunks_computed")->value();
    double hits = reg.findCounter("GPU.hit_requests")->value();
    double misses = reg.findCounter("GPU.miss_requests")->value();
    EXPECT_GT(issued, 0.0);
    EXPECT_DOUBLE_EQ(issued, computed);
    EXPECT_DOUBLE_EQ(hits + misses, issued);
    // Requests are fixed-size chunks, so miss bytes imply misses > 0
    // (working set exceeds the GPU's local memory capacity or not —
    // either way the counters must agree with the byte totals).
    if (g.missBytes > 0.0)
        EXPECT_GT(misses, 0.0);
    else
        EXPECT_DOUBLE_EQ(misses, 0.0);
    // Local-memory hit/miss counters mirror the engine's.
    const telemetry::Counter *lhits = reg.findCounter("GPU.local.hits");
    if (lhits != nullptr) {
        EXPECT_DOUBLE_EQ(lhits->value(), hits);
        EXPECT_DOUBLE_EQ(reg.findCounter("GPU.local.misses")->value(),
                         misses);
    }
}

TEST(SocTelemetry, RegistryResetsBetweenRuns)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    soc->attachTelemetry(&reg);
    KernelJob j;
    j.workingSetBytes = 8e6;
    j.totalBytes = 8e6;
    soc->run({{"CPU", j}});
    double first = reg.findCounter("CPU.chunks_issued")->value();
    soc->run({{"CPU", j}});
    // Values describe the latest run only, not an accumulation.
    EXPECT_DOUBLE_EQ(reg.findCounter("CPU.chunks_issued")->value(),
                     first);
}

TEST(RunReport, WritesRequiredKeysAndStats)
{
    telemetry::StatsRegistry reg;
    reg.counter("c", "count").add(4.0);

    telemetry::RunReport report("gables test", "unit-soc");
    report.addConfig("soc", "unit-soc");
    report.addConfig("epochs", static_cast<long>(8));
    report.setDuration(0.5);
    report.addEngine({"CPU", 100.0, 50.0, 10.0, 200.0});
    report.addResource({"DRAM", 50.0, 0.25, 0.5});
    report.addDelta("CPU", 250.0, 200.0);
    report.setRegistry(&reg);

    std::ostringstream out;
    report.write(out);
    JsonValue root = parseJson(out.str());

    EXPECT_EQ(root.at("schema").at("name").asString(),
              "gables-run-report");
    EXPECT_DOUBLE_EQ(root.at("schema").at("version").asNumber(), 1.0);
    EXPECT_EQ(root.at("generator").asString(), "gables test");
    EXPECT_EQ(root.at("subject").asString(), "unit-soc");
    EXPECT_EQ(root.at("config").at("soc").asString(), "unit-soc");
    EXPECT_DOUBLE_EQ(root.at("config").at("epochs").asNumber(), 8.0);
    EXPECT_DOUBLE_EQ(root.at("duration_s").asNumber(), 0.5);
    EXPECT_EQ(root.at("engines").at(0).at("name").asString(), "CPU");
    EXPECT_DOUBLE_EQ(
        root.at("resources").at(0).at("utilization").asNumber(), 0.5);
    EXPECT_NEAR(root.at("model_vs_sim").at(0).at("delta_pct").asNumber(),
                -20.0, 1e-9);
    EXPECT_DOUBLE_EQ(root.at("stats").at("c").at("value").asNumber(),
                     4.0);
}

} // namespace
} // namespace sim
} // namespace gables
