/**
 * @file
 * Golden-file test of the Chrome Trace Event output: a small
 * deterministic recorder must serialize byte-for-byte to a known
 * string, and a full simulator trace (slices + counter tracks) must
 * parse back as structurally valid Trace Event JSON.
 */

#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/soc.h"
#include "sim/trace.h"
#include "soc/catalog.h"
#include "telemetry/stats.h"
#include "util/json_reader.h"

namespace gables {
namespace sim {
namespace {

/**
 * The exact serialization of two slices on two tracks plus two
 * counter samples. Metadata events are sorted by track name
 * (CPU.link before DRAM) while tids follow first appearance
 * (DRAM=1, CPU.link=2); counter events trail the slices.
 */
const char *kGoldenTrace =
    "{\"traceEvents\":["
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
    "\"args\":{\"name\":\"CPU.link\"}},"
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
    "\"args\":{\"name\":\"DRAM\"}},"
    "{\"name\":\"DRAM\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
    "\"ts\":0,\"dur\":1},"
    "{\"name\":\"xfer\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
    "\"ts\":1,\"dur\":2},"
    "{\"name\":\"DRAM.queue\",\"ph\":\"C\",\"pid\":1,\"ts\":0,"
    "\"args\":{\"value\":1}},"
    "{\"name\":\"DRAM.queue\",\"ph\":\"C\",\"pid\":1,\"ts\":1.5,"
    "\"args\":{\"value\":2}}"
    "],\"displayTimeUnit\":\"ns\"}";

TEST(TraceGolden, SmallTraceMatchesByteForByte)
{
    TraceRecorder rec;
    rec.record("DRAM", 0.0, 1e-6);
    rec.record("CPU.link", 1e-6, 2e-6, "xfer");
    rec.counter("DRAM.queue", 0.0, 1.0);
    rec.counter("DRAM.queue", 1.5e-6, 2.0);

    std::ostringstream out;
    rec.writeChromeTrace(out);
    EXPECT_EQ(out.str(), kGoldenTrace);
}

TEST(TraceGolden, GoldenStringIsValidJson)
{
    JsonValue root = parseJson(kGoldenTrace);
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.at("displayTimeUnit").asString(), "ns");
    const JsonValue &events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_EQ(events.size(), 6u);
    EXPECT_EQ(events.at(4).at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(
        events.at(5).at("args").at("value").asNumber(), 2.0);
}

/**
 * Run a real simulation with tracing + epoch counters and check
 * every emitted event is a well-formed Trace Event of a known phase.
 */
TEST(TraceGolden, FullSimTraceIsValidTraceEventJson)
{
    auto soc = SocCatalog::snapdragon835Sim();
    telemetry::StatsRegistry reg;
    TraceRecorder rec;
    soc->attachTelemetry(&reg);
    soc->attachTracer(&rec);
    KernelJob j;
    j.workingSetBytes = 4e6;
    j.totalBytes = 4e6;
    j.opsPerByte = 1.0;
    soc->run({{"CPU", j}, {"DSP", j}}, 8);

    std::ostringstream out;
    rec.writeChromeTrace(out);
    JsonValue root = parseJson(out.str());
    const JsonValue &events = root.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.size(), 0u);

    std::map<std::string, size_t> phases;
    std::set<std::string> counter_tracks;
    for (size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        const std::string ph = e.at("ph").asString();
        ++phases[ph];
        ASSERT_TRUE(e.has("name"));
        ASSERT_TRUE(e.has("pid"));
        if (ph == "X") {
            EXPECT_GE(e.at("ts").asNumber(), 0.0);
            EXPECT_GE(e.at("dur").asNumber(), 0.0);
            EXPECT_TRUE(e.has("tid"));
        } else if (ph == "C") {
            EXPECT_GE(e.at("ts").asNumber(), 0.0);
            ASSERT_TRUE(e.at("args").has("value"));
            counter_tracks.insert(e.at("name").asString());
        } else {
            EXPECT_EQ(ph, "M");
        }
    }
    EXPECT_GT(phases["M"], 0u);
    EXPECT_GT(phases["X"], 0u);
    EXPECT_GT(phases["C"], 0u);
    // Queue-depth tracks from resources, plus the epoch-sampled
    // utilization / bandwidth / ops-rate tracks.
    EXPECT_EQ(counter_tracks.count("DRAM.queue"), 1u);
    EXPECT_EQ(counter_tracks.count("DRAM.util"), 1u);
    EXPECT_EQ(counter_tracks.count("DRAM.bw_gbps"), 1u);
    EXPECT_EQ(counter_tracks.count("CPU.gops"), 1u);
    EXPECT_EQ(counter_tracks.count("DSP.gops"), 1u);
}

} // namespace
} // namespace sim
} // namespace gables
