/**
 * @file
 * Tests for execution tracing: recorder semantics, non-overlap of
 * service intervals per resource (the FIFO invariant), and Chrome
 * Trace Event Format export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/resource.h"
#include "sim/trace.h"
#include "soc/catalog.h"
#include "soc/pipeline.h"
#include "soc/usecases.h"

namespace gables {
namespace sim {
namespace {

TEST(Trace, RecordsAcquires)
{
    TraceRecorder trace;
    BandwidthResource r("link", 100.0);
    r.setTracer(&trace);
    r.acquire(0.0, 50.0);
    r.acquire(0.0, 100.0);
    ASSERT_EQ(trace.events().size(), 2u);
    EXPECT_EQ(trace.events()[0].track, "link");
    EXPECT_DOUBLE_EQ(trace.events()[0].start, 0.0);
    EXPECT_DOUBLE_EQ(trace.events()[0].duration, 0.5);
    // Second request queues behind the first.
    EXPECT_DOUBLE_EQ(trace.events()[1].start, 0.5);
    EXPECT_DOUBLE_EQ(trace.events()[1].duration, 1.0);
}

TEST(Trace, DetachStopsRecording)
{
    TraceRecorder trace;
    BandwidthResource r("link", 100.0);
    r.setTracer(&trace);
    r.acquire(0.0, 50.0);
    r.setTracer(nullptr);
    r.acquire(0.0, 50.0);
    EXPECT_EQ(trace.events().size(), 1u);
}

TEST(Trace, TrackFilterAndClear)
{
    TraceRecorder trace;
    trace.record("a", 0.0, 1.0);
    trace.record("b", 1.0, 2.0);
    trace.record("a", 3.0, 1.0);
    EXPECT_EQ(trace.track("a").size(), 2u);
    EXPECT_EQ(trace.track("b").size(), 1u);
    EXPECT_EQ(trace.track("c").size(), 0u);
    trace.clear();
    EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, ChromeFormatStructure)
{
    TraceRecorder trace;
    trace.record("DRAM", 1e-6, 2e-6, "read");
    std::ostringstream oss;
    trace.writeChromeTrace(oss);
    std::string json = oss.str();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    // Balanced JSON.
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += (c == '{') - (c == '}');
        brackets += (c == '[') - (c == ']');
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, PipelineServiceIntervalsNeverOverlapPerResource)
{
    // The FIFO invariant: a single server never runs two transfers
    // at once. Check every track of a real pipeline run.
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry entry = UsecaseCatalog::videocapture();
    TraceRecorder trace;
    PipelineSim sim(soc, entry.graph);
    sim.setTraceRecorder(&trace);
    sim.run(8);
    ASSERT_GT(trace.events().size(), 100u);

    // Group by track and verify sorted, non-overlapping service.
    std::vector<std::string> tracks = {"DRAM", "ISP.link",
                                       "ISP.compute", "VENC.compute"};
    for (const std::string &name : tracks) {
        auto events = trace.track(name);
        ASSERT_FALSE(events.empty()) << name;
        std::sort(events.begin(), events.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      return a.start < b.start;
                  });
        for (size_t i = 1; i < events.size(); ++i) {
            EXPECT_GE(events[i].start + 1e-15,
                      events[i - 1].start + events[i - 1].duration)
                << name << " event " << i;
        }
    }
}

TEST(Trace, PipelineBusyTimeMatchesStats)
{
    // Sum of traced DRAM intervals == the resource's busy time.
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("single");
    g.addStage("GPU", 1e6);
    g.addBuffer("", "GPU", 10e6, "in");
    TraceRecorder trace;
    PipelineSim sim(soc, g);
    sim.setTraceRecorder(&trace);
    PipelineStats stats = sim.run(8);
    double traced = 0.0;
    for (const TraceEvent &e : trace.track("DRAM"))
        traced += e.duration;
    double stat_busy = 0.0;
    for (const ResourceStats &r : stats.resources) {
        if (r.name == "DRAM")
            stat_busy = r.busyTime;
    }
    EXPECT_NEAR(traced, stat_busy, stat_busy * 1e-12);
}

TEST(Trace, SimSocAttachTracerCoversAllResources)
{
    auto soc = SocCatalog::snapdragon835Sim();
    TraceRecorder trace;
    soc->attachTracer(&trace);
    KernelJob job;
    job.workingSetBytes = 8e6;
    job.totalBytes = 8e6;
    job.opsPerByte = 1.0;
    soc->run({{"CPU", job}, {"GPU", job}});
    EXPECT_FALSE(trace.track("DRAM").empty());
    EXPECT_FALSE(trace.track("CPU.link").empty());
    EXPECT_FALSE(trace.track("GPU.compute").empty());
    EXPECT_FALSE(trace.track("high-bandwidth fabric").empty());
    // Detach stops recording.
    size_t before = trace.events().size();
    soc->attachTracer(nullptr);
    soc->run({{"CPU", job}});
    EXPECT_EQ(trace.events().size(), before);
}

} // namespace
} // namespace sim
} // namespace gables
