/**
 * @file
 * Tests of the SoC catalog: spec validity, and the central
 * calibration claim — running the ERT micro-benchmark on the
 * simulated Snapdragon 835 reproduces the paper's measured rooflines
 * (Figures 7a, 7b, 9).
 */

#include <gtest/gtest.h>

#include "ert/ert.h"
#include "ert/fitter.h"
#include "soc/catalog.h"
#include "soc/market_data.h"

namespace gables {
namespace {

TEST(Catalog, SpecsValidate)
{
    EXPECT_NO_THROW(SocCatalog::snapdragon835().validate());
    EXPECT_NO_THROW(SocCatalog::snapdragon821().validate());
    EXPECT_NO_THROW(SocCatalog::snapdragon835Full().validate());
    EXPECT_NO_THROW(SocCatalog::paperTwoIp().validate());
    EXPECT_NO_THROW(SocCatalog::paperTwoIpBalanced().validate());
}

TEST(Catalog, Sd835UsesMeasuredAnchors)
{
    SocSpec soc = SocCatalog::snapdragon835();
    EXPECT_DOUBLE_EQ(soc.ppeak(), 7.5e9);
    EXPECT_DOUBLE_EQ(soc.ip(0).bandwidth, 15.1e9);
    // A1 = 349.6 / 7.5 ~ 46.6 (the paper's ~47x).
    EXPECT_NEAR(soc.ip(1).acceleration, 46.6, 0.1);
    EXPECT_DOUBLE_EQ(soc.ip(1).bandwidth, 24.4e9);
    EXPECT_NEAR(soc.ip(2).acceleration, 0.4, 1e-9);
    EXPECT_DOUBLE_EQ(soc.ip(2).bandwidth, 5.4e9);
}

TEST(Catalog, FullSpecHasTableOneIps)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    ASSERT_EQ(soc.numIps(), static_cast<size_t>(kNumFullSocIps));
    EXPECT_EQ(soc.ip(kIpAp).name, "AP");
    EXPECT_EQ(soc.ip(kIpGpu).name, "GPU");
    EXPECT_EQ(soc.ip(kIpIpu).name, "IPU");
    EXPECT_EQ(soc.ip(kIpDsp).name, "DSP");
}

TEST(Catalog, PaperTwoIpMatchesFigure6Inputs)
{
    SocSpec soc = SocCatalog::paperTwoIp();
    EXPECT_DOUBLE_EQ(soc.ppeak(), 40e9);
    EXPECT_DOUBLE_EQ(soc.bpeak(), 10e9);
    EXPECT_DOUBLE_EQ(soc.ip(1).acceleration, 5.0);
    EXPECT_DOUBLE_EQ(soc.ip(0).bandwidth, 6e9);
    EXPECT_DOUBLE_EQ(soc.ip(1).bandwidth, 15e9);
    EXPECT_DOUBLE_EQ(SocCatalog::paperTwoIpBalanced().bpeak(), 20e9);
}

/**
 * The calibration fixture: ERT on the simulated 835 engine must fit
 * the paper's measured roofline within a small tolerance.
 */
struct CalibrationCase {
    const char *engine;
    double peakOps;
    double peakBw;
};

class Sd835Calibration
    : public ::testing::TestWithParam<CalibrationCase>
{
};

TEST_P(Sd835Calibration, ErtReproducesMeasuredRoofline)
{
    const CalibrationCase &c = GetParam();
    auto soc = SocCatalog::snapdragon835Sim();
    ErtConfig config;
    config.intensities = ErtConfig::defaultIntensities();
    config.workingSetBytes = 64e6; // defeats the local memories
    config.totalBytes = 128e6;
    auto samples = ErtSweep::run(*soc, c.engine, config);
    RooflineFit fit = RooflineFitter::fitDram(samples);
    EXPECT_NEAR(fit.peakOps, c.peakOps, c.peakOps * 0.03) << c.engine;
    EXPECT_NEAR(fit.peakBw, c.peakBw, c.peakBw * 0.03) << c.engine;
}

INSTANTIATE_TEST_SUITE_P(
    PaperFigures, Sd835Calibration,
    ::testing::Values(CalibrationCase{"CPU", 7.5e9, 15.1e9},
                      CalibrationCase{"GPU", 349.6e9, 24.4e9},
                      CalibrationCase{"DSP", 3.0e9, 5.4e9}),
    [](const ::testing::TestParamInfo<CalibrationCase> &info) {
        return info.param.engine;
    });

TEST(Catalog, Sd821SimAlsoTracesRooflines)
{
    // The paper reports its findings hold on the 821 as well.
    auto soc = SocCatalog::snapdragon821Sim();
    ErtConfig config;
    config.intensities = {0.125, 64.0};
    config.workingSetBytes = 64e6;
    config.totalBytes = 64e6;
    auto samples = ErtSweep::run(*soc, "CPU", config);
    RooflineFit fit = RooflineFitter::fitDram(samples);
    EXPECT_NEAR(fit.peakOps, 6.4e9, 6.4e9 * 0.03);
    EXPECT_NEAR(fit.peakBw, 14.0e9, 14.0e9 * 0.03);
}

TEST(Catalog, CpuSimdCeilingMatchesSectionFourB)
{
    // "When we apply vectorization ... we can achieve in excess of
    // 40 GFLOP/s"; the paper standardizes on the 7.5 non-NEON
    // ceiling. Both live on one roofline with a ceiling.
    Roofline cpu = SocCatalog::sd835CpuRooflineWithSimd();
    EXPECT_DOUBLE_EQ(cpu.attainable(100.0), 40e9);
    EXPECT_DOUBLE_EQ(cpu.attainableWithCeilings(100.0), 7.5e9);
    // In the bandwidth-bound region the two coincide.
    EXPECT_DOUBLE_EQ(cpu.attainable(0.25),
                     cpu.attainableWithCeilings(0.25));
}

TEST(MarketData, ChipsetSeriesShapeMatchesFigure2a)
{
    const auto &data = MarketData::chipsetsPerYear();
    ASSERT_EQ(data.size(), 11u);
    EXPECT_EQ(data.front().year, 2007);
    EXPECT_EQ(data.back().year, 2017);
    EXPECT_EQ(MarketData::peakChipsetYear(), 2015);
    EXPECT_TRUE(MarketData::declinesAfterPeak());
    // Monotone growth up to the peak.
    for (size_t i = 1; i < data.size(); ++i) {
        if (data[i].year <= 2015) {
            EXPECT_GT(data[i].count, data[i - 1].count);
        }
    }
}

TEST(MarketData, IpBlocksClimbPastThirty)
{
    const auto &data = MarketData::ipBlocksPerGeneration();
    ASSERT_GE(data.size(), 6u);
    for (size_t i = 1; i < data.size(); ++i)
        EXPECT_GT(data[i].count, data[i - 1].count);
    EXPECT_GT(data.back().count, 30.0);
}

} // namespace
} // namespace gables
