/**
 * @file
 * Fuzz-style robustness tests for the config parser: arbitrary
 * garbage must produce a FatalError or a valid SocConfig — never a
 * crash, hang, or silently inconsistent object.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/gables.h"
#include "soc/config.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/rng.h"

namespace gables {
namespace {

/** Tokens the generator splices together. */
const char *kTokens[] = {
    "[soc]",    "[ip A]",   "[ip B]",    "[usecase u]", "[",
    "]",        "name",     "ppeak",     "bpeak",       "accel",
    "bandwidth", "=",       "1e9",       "40 Gops/s",   "@",
    "0.5",      "inf",      "#comment",  ";note",       "A",
    "B",        "garbage",  "=@=",       "\"",          "1 GB/s",
};

class ConfigFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ConfigFuzz, NeverCrashesOnRandomTokenSoup)
{
    Rng rng(GetParam());
    for (int doc = 0; doc < 200; ++doc) {
        std::string text;
        int lines = static_cast<int>(rng.uniformInt(0, 20));
        for (int l = 0; l < lines; ++l) {
            int words = static_cast<int>(rng.uniformInt(1, 5));
            for (int w = 0; w < words; ++w) {
                text += kTokens[rng.uniformInt(
                    0, static_cast<int64_t>(std::size(kTokens)) - 1)];
                text += ' ';
            }
            text += '\n';
        }
        try {
            SocConfig cfg = parseSocConfig(text);
            // If it parsed, the result must be internally valid.
            EXPECT_NO_THROW(cfg.soc.validate());
            for (const Usecase &u : cfg.usecases)
                EXPECT_NO_THROW(u.validate());
        } catch (const FatalError &) {
            // Expected for malformed documents.
        }
    }
}

TEST_P(ConfigFuzz, RandomBytesRejectedCleanly)
{
    Rng rng(GetParam() ^ 0xF00D);
    for (int doc = 0; doc < 100; ++doc) {
        std::string text;
        int len = static_cast<int>(rng.uniformInt(0, 400));
        for (int i = 0; i < len; ++i) {
            // Printable ASCII plus newlines/tabs.
            int c = static_cast<int>(rng.uniformInt(0, 97));
            text += c < 95 ? static_cast<char>(' ' + c)
                           : (c == 95 ? '\n' : '\t');
        }
        try {
            parseSocConfig(text);
        } catch (const FatalError &) {
        }
    }
    SUCCEED();
}

TEST_P(ConfigFuzz, MutatedValidConfigStaysSane)
{
    // Start from a valid document and flip random characters; the
    // parser must reject or produce a consistent config.
    const std::string base = "[soc]\nname = x\nppeak = 40 Gops/s\n"
                             "bpeak = 10 GB/s\n[ip CPU]\naccel = 1\n"
                             "bandwidth = 6 GB/s\n[usecase u]\n"
                             "CPU = 1 @ 8\n";
    Rng rng(GetParam() ^ 0xBEEF);
    for (int doc = 0; doc < 200; ++doc) {
        std::string text = base;
        int flips = static_cast<int>(rng.uniformInt(1, 4));
        for (int f = 0; f < flips; ++f) {
            size_t pos = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(text.size()) - 1));
            text[pos] = static_cast<char>(' ' + rng.uniformInt(0, 94));
        }
        try {
            SocConfig cfg = parseSocConfig(text);
            EXPECT_NO_THROW(cfg.soc.validate());
            for (const Usecase &u : cfg.usecases) {
                EXPECT_NO_THROW(u.validate());
                // Usecases evaluate without crashing.
                if (u.numIps() == cfg.soc.numIps())
                    GablesModel::evaluate(cfg.soc, u);
            }
        } catch (const FatalError &) {
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Values(1u, 7u, 42u, 1337u));

// A fixed corpus of malformed documents, one per historical silent-
// parse bug. Unlike the random soups above, each of these used to
// either crash nothing but *succeed* with a bogus value (null
// end-pointer strtod), or produce a diagnostic without a location.
// All must now raise a ConfigError that points at a line.
TEST(ConfigMalformedCorpus, EveryDocumentRejectedWithLocation)
{
    const char *corpus[] = {
        // Trailing garbage after numbers: strtod used to stop at the
        // first bad character and silently keep the prefix.
        "[soc]\nppeak = 1e9x\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n",
        "[soc]\nppeak = 1e9\nbpeak = 1e9\n[ip A]\naccel = 1.5.2\n"
        "bandwidth = 1e9\n",
        "[soc]\nppeak = 1e9\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n[usecase u]\nA = 0.5abc @ 8\n",
        "[soc]\nppeak = 1e9\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n[usecase u]\nA = 1 @ 8 cows\n",
        // Overflow: 1e999 used to become +inf without complaint.
        "[soc]\nppeak = 1e999\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n",
        // Unknown unit / binary prefix in a rate.
        "[soc]\nppeak = 40 Qops/s\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n",
        // Empty-value and bare-name headers.
        "[soc]\nppeak =\nbpeak = 1e9\n",
        "[soc]\nppeak = 1e9\nbpeak = 1e9\n[ip]\naccel = 1\n"
        "bandwidth = 1e9\n",
        "[soc]\nppeak = 1e9\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n[usecase ]\n",
        // Duplicate sections that used to shadow silently.
        "[soc]\nppeak = 1e9\nbpeak = 1e9\n[ip A]\naccel = 1\n"
        "bandwidth = 1e9\n[usecase u]\nA = 1 @ 1\n[usecase u]\n"
        "A = 1 @ 2\n",
    };
    for (const char *doc : corpus) {
        SCOPED_TRACE(doc);
        try {
            parseSocConfig(doc);
            FAIL() << "expected ConfigError";
        } catch (const ConfigError &err) {
            EXPECT_GT(err.where().line, 0) << err.what();
            EXPECT_NE(std::string(err.what()).find(':'),
                      std::string::npos);
        }
    }
}

} // namespace
} // namespace gables
