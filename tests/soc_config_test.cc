/**
 * @file
 * Tests for the SoC/usecase text configuration format.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/gables.h"
#include "soc/catalog.h"
#include "soc/config.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/rng.h"

namespace gables {
namespace {

const char *kPaperConfig = R"(
# The paper's Figure 6 two-IP SoC.
[soc]
name  = paper two-IP
ppeak = 40 Gops/s
bpeak = 10 GB/s

[ip CPU]
accel     = 1
bandwidth = 6 GB/s

[ip GPU]
accel     = 5
bandwidth = 15 GB/s

[usecase 6a]
CPU = 1.0 @ 8

[usecase 6b]
CPU = 0.25 @ 8
GPU = 0.75 @ 0.1  ; poor reuse
)";

TEST(Config, ParsesPaperSoc)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    EXPECT_EQ(cfg.soc.name(), "paper two-IP");
    EXPECT_DOUBLE_EQ(cfg.soc.ppeak(), 40e9);
    EXPECT_DOUBLE_EQ(cfg.soc.bpeak(), 10e9);
    ASSERT_EQ(cfg.soc.numIps(), 2u);
    EXPECT_EQ(cfg.soc.ip(0).name, "CPU");
    EXPECT_DOUBLE_EQ(cfg.soc.ip(1).acceleration, 5.0);
    EXPECT_DOUBLE_EQ(cfg.soc.ip(1).bandwidth, 15e9);
}

TEST(Config, ParsesUsecases)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    ASSERT_EQ(cfg.usecases.size(), 2u);
    const Usecase &u = cfg.usecase("6b");
    EXPECT_DOUBLE_EQ(u.fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(u.intensity(1), 0.1);
    // The omitted IP in 6a defaults to zero work.
    EXPECT_DOUBLE_EQ(cfg.usecase("6a").fraction(1), 0.0);
}

TEST(Config, ParsedConfigEvaluatesLikeCatalog)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    double parsed =
        GablesModel::evaluate(cfg.soc, cfg.usecase("6b")).attainable;
    double catalog = GablesModel::evaluate(
                         SocCatalog::paperTwoIp(),
                         Usecase::twoIp("6b", 0.75, 8.0, 0.1))
                         .attainable;
    EXPECT_DOUBLE_EQ(parsed, catalog);
}

TEST(Config, InfIntensity)
{
    SocConfig cfg = parseSocConfig(R"(
[soc]
ppeak = 1 Gops/s
bpeak = 1 GB/s
[ip X]
accel = 1
bandwidth = 1 GB/s
[usecase pure]
X = 1 @ inf
)");
    EXPECT_TRUE(std::isinf(cfg.usecase("pure").intensity(0)));
}

TEST(Config, CommentsAndWhitespaceTolerated)
{
    SocConfig cfg = parseSocConfig(
        "  [soc]  # header comment\n"
        "name=x\n"
        "  ppeak =  2e9 ; trailing\n"
        "bpeak=1e9\n"
        "[ip A]\n"
        "accel=1\n"
        "bandwidth=5e8\n");
    EXPECT_EQ(cfg.soc.name(), "x");
    EXPECT_DOUBLE_EQ(cfg.soc.ip(0).bandwidth, 5e8);
}

TEST(Config, ErrorsCarryLineNumbers)
{
    try {
        parseSocConfig("[soc]\nppeak = 1e9\nbpeak = 1e9\nbogus\n");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        // Diagnostics follow the compiler-style "source:line: message"
        // shape; the default source name is "config".
        EXPECT_NE(std::string(err.what()).find("config:4:"),
                  std::string::npos);
        EXPECT_EQ(err.where().line, 4);
    }
}

TEST(Config, LoadPutsPathInDiagnostic)
{
    std::string path = ::testing::TempDir() + "gables_cfg_bad.ini";
    {
        std::ofstream out(path);
        out << "[soc]\nppeak = 1e9\nbpeek = 1e9\n";
    }
    try {
        loadSocConfig(path);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find(path + ":3:"),
                  std::string::npos);
    }
}

TEST(Config, UnknownKeySuggestsClosest)
{
    try {
        parseSocConfig("[soc]\nppeak = 1e9\nbpeek = 1e9\n");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        EXPECT_NE(
            std::string(err.what()).find("did you mean 'bpeak'?"),
            std::string::npos);
    }
}

TEST(Config, DuplicateUsecaseReportsBothLines)
{
    const char *text = "[soc]\n"          // 1
                       "ppeak=1e9\n"      // 2
                       "bpeak=1e9\n"      // 3
                       "[ip A]\n"         // 4
                       "accel=1\n"        // 5
                       "bandwidth=1e9\n"  // 6
                       "[usecase u]\n"    // 7
                       "A = 1 @ 1\n"      // 8
                       "[usecase u]\n";   // 9
    try {
        parseSocConfig(text);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        std::string what = err.what();
        EXPECT_EQ(err.where().line, 9);
        EXPECT_NE(what.find("duplicate usecase 'u'"),
                  std::string::npos);
        EXPECT_NE(what.find("first defined at line 7"),
                  std::string::npos);
    }
}

TEST(Config, UsecaseLookupSuggestsClosest)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    try {
        cfg.usecase("6c");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("did you mean"),
                  std::string::npos);
    }
}

TEST(Config, RejectsStructuralProblems)
{
    EXPECT_THROW(parseSocConfig(""), FatalError); // no [soc]
    EXPECT_THROW(parseSocConfig("[soc]\nbpeak = 1e9\n[ip A]\n"
                                "accel = 1\nbandwidth = 1e9\n"),
                 FatalError); // no ppeak
    EXPECT_THROW(parseSocConfig("[soc]\nppeak = 1e9\nbpeak = 1e9\n"),
                 FatalError); // no IPs
    EXPECT_THROW(
        parseSocConfig("[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\n"
                       "accel=1\nbandwidth=1e9\n[ip A]\naccel=1\n"
                       "bandwidth=1e9\n"),
        FatalError); // duplicate IP
    EXPECT_THROW(
        parseSocConfig("[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\n"
                       "accel=1\nbandwidth=1e9\n[usecase u]\n"
                       "Ghost = 1 @ 1\n"),
        FatalError); // unknown IP in usecase
    EXPECT_THROW(parseSocConfig("key = value\n"),
                 FatalError); // key outside section
    EXPECT_THROW(parseSocConfig("[mystery]\n"), FatalError);
    EXPECT_THROW(parseSocConfig("[soc\n"), FatalError);
}

TEST(Config, RejectsBadWorkSyntax)
{
    const char *prefix = "[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\n"
                         "accel=1\nbandwidth=1e9\n[usecase u]\n";
    EXPECT_THROW(parseSocConfig(std::string(prefix) + "A = 0.5\n"),
                 FatalError); // missing @
    EXPECT_THROW(
        parseSocConfig(std::string(prefix) + "A = x @ 1\n"),
        FatalError);
    EXPECT_THROW(
        parseSocConfig(std::string(prefix) + "A = 1 @ fast\n"),
        FatalError);
    EXPECT_THROW(parseSocConfig(std::string(prefix) +
                                "A = 0.5 @ 1\nA = 0.5 @ 1\n"),
                 FatalError); // duplicate entry
}

TEST(Config, FormatRoundTrips)
{
    SocSpec soc = SocCatalog::snapdragon835();
    std::vector<Usecase> usecases = {
        Usecase("mix", {IpWork{0.25, 8.0}, IpWork{0.7, 0.5},
                        IpWork{0.05, 2.0}}),
        Usecase("pure", {IpWork{1.0,
                                std::numeric_limits<double>::infinity()},
                         IpWork{0.0, 1.0}, IpWork{0.0, 1.0}}),
    };
    std::string text = formatSocConfig(soc, usecases);
    SocConfig cfg = parseSocConfig(text);
    EXPECT_EQ(cfg.soc.name(), soc.name());
    EXPECT_DOUBLE_EQ(cfg.soc.bpeak(), soc.bpeak());
    ASSERT_EQ(cfg.usecases.size(), 2u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(cfg.usecase("mix").fraction(i),
                    usecases[0].fraction(i), 1e-9);
    }
    EXPECT_TRUE(std::isinf(cfg.usecase("pure").intensity(0)));
}

// Every parse-error branch in config.cc, one row each. All of them
// must throw a ConfigError whose message carries a "config:<line>:"
// location plus the branch's distinguishing text.
TEST(Config, EveryErrorBranchCarriesALocation)
{
    // A minimal valid prefix (lines 1..6) used by rows that need a
    // well-formed SoC before the broken part.
    const std::string kSoc = "[soc]\nppeak=1e9\nbpeak=1e9\n"
                             "[ip A]\naccel=1\nbandwidth=1e9\n";
    struct Case {
        std::string text;
        int line;
        const char *want;
    };
    const Case cases[] = {
        {"[soc\n", 1, "unterminated section header"},
        {kSoc + "[soc]\n", 7, "duplicate [soc] section"},
        {"[ip ]\n", 1, "[ip] needs a name"},
        {kSoc + "[ip A]\naccel=1\nbandwidth=1e9\n", 7,
         "duplicate IP 'A' (first defined at line 4)"},
        {"[usecase ]\n", 1, "[usecase] needs a name"},
        {kSoc + "[usecase u]\nA = 1 @ 1\n[usecase u]\n", 9,
         "duplicate usecase 'u' (first defined at line 7)"},
        {"[mystery]\n", 1, "unknown section"},
        {kSoc + "bogus\n", 7, "expected 'key = value'"},
        {kSoc + "x =\n", 7, "empty key or value"},
        {"key = value\n", 1, "key outside any section"},
        {"[soc]\nbpeek = 1e9\n", 2, "unknown [soc] key 'bpeek'"},
        {"[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\nspeed = 2\n", 5,
         "unknown [ip] key 'speed'"},
        {"[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\naccel = fast\n", 5,
         "cannot parse accel"},
        {kSoc + "[usecase u]\nA = 1 @ 1\nA = 1 @ 1\n", 9,
         "duplicate work entry for 'A'"},
        {kSoc + "[usecase u]\nA = x @ 1\n", 8,
         "cannot parse fraction"},
        {kSoc + "[usecase u]\nA = 1 @ fast\n", 8,
         "cannot parse intensity"},
        {kSoc + "[usecase u]\nA = 0.5\n", 8,
         "work value must be 'fraction @ intensity'"},
        {"[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\nbandwidth=1e9\n", 4,
         "IP 'A' is missing 'accel'"},
        {"[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\naccel=1\n", 4,
         "IP 'A' is missing 'bandwidth'"},
        {kSoc + "[usecase u]\nGhost = 1 @ 1\n", 7,
         "names unknown IP 'Ghost'"},
        {"", 1, "missing the [soc] section"},
        {"[soc]\nbpeak=1e9\n[ip A]\naccel=1\nbandwidth=1e9\n", 1,
         "missing 'ppeak'"},
        {"[soc]\nppeak=1e9\n[ip A]\naccel=1\nbandwidth=1e9\n", 1,
         "missing 'bpeak'"},
        {"[soc]\nppeak=1e9\nbpeak=1e9\n", 1,
         "declares no [ip ...] sections"},
        // Model invariants re-raised with the section's location.
        {"[soc]\nppeak=0\nbpeak=1e9\n[ip A]\naccel=1\n"
         "bandwidth=1e9\n", 1, "Ppeak must be positive"},
        {kSoc + "[usecase u]\nA = 0.5 @ 1\n", 7,
         "fractions sum to"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.text);
        try {
            parseSocConfig(c.text);
            FAIL() << "expected ConfigError";
        } catch (const ConfigError &err) {
            std::string what = err.what();
            EXPECT_NE(what.find("config:" + std::to_string(c.line) +
                                ":"),
                      std::string::npos)
                << what;
            EXPECT_NE(what.find(c.want), std::string::npos) << what;
        }
    }
}

// Property: formatSocConfig -> parseSocConfig is the identity (to
// formatting precision) for randomly generated SoCs and usecases.
TEST(Config, FormatParseRoundTripRandomized)
{
    Rng rng(0xC0FFEE);
    for (int iter = 0; iter < 25; ++iter) {
        SCOPED_TRACE(iter);
        size_t n = 1 + static_cast<size_t>(rng.next() % 4);
        std::vector<IpSpec> ips;
        for (size_t i = 0; i < n; ++i) {
            ips.push_back(IpSpec{"IP" + std::to_string(i),
                                 i == 0 ? 1.0 : rng.uniform(0.5, 20.0),
                                 rng.uniform(1e9, 40e9)});
        }
        SocSpec soc("rand", rng.uniform(10e9, 100e9),
                    rng.uniform(5e9, 30e9), std::move(ips));

        std::vector<double> f(n);
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            f[i] = rng.uniform(0.01, 1.0);
            sum += f[i];
        }
        std::vector<IpWork> work;
        for (size_t i = 0; i < n; ++i)
            work.push_back(IpWork{f[i] / sum,
                                  rng.uniform(0.1, 16.0)});
        Usecase u("mix", std::move(work));

        SocConfig cfg = parseSocConfig(formatSocConfig(soc, {u}));
        EXPECT_NEAR(cfg.soc.ppeak(), soc.ppeak(),
                    soc.ppeak() * 1e-5);
        EXPECT_NEAR(cfg.soc.bpeak(), soc.bpeak(),
                    soc.bpeak() * 1e-5);
        ASSERT_EQ(cfg.soc.numIps(), n);
        ASSERT_EQ(cfg.usecases.size(), 1u);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(cfg.soc.ip(i).name, soc.ip(i).name);
            EXPECT_NEAR(cfg.soc.ip(i).acceleration,
                        soc.ip(i).acceleration,
                        soc.ip(i).acceleration * 1e-8);
            EXPECT_NEAR(cfg.soc.ip(i).bandwidth, soc.ip(i).bandwidth,
                        soc.ip(i).bandwidth * 1e-5);
            EXPECT_NEAR(cfg.usecase("mix").fraction(i), u.fraction(i),
                        1e-8);
            if (u.fraction(i) > 0.0) {
                EXPECT_NEAR(cfg.usecase("mix").intensity(i),
                            u.intensity(i), u.intensity(i) * 1e-8);
            }
        }
    }
}

TEST(Config, LintFlagsAdvisoryFindings)
{
    // Unreferenced IP + IP bandwidth above Bpeak: two warnings, no
    // errors.
    SocConfig cfg = parseSocConfig(
        "[soc]\nppeak = 40e9\nbpeak = 10e9\n"
        "[ip CPU]\naccel = 1\nbandwidth = 6e9\n"
        "[ip GPU]\naccel = 5\nbandwidth = 15e9\n"
        "[usecase u]\nCPU = 1 @ 8\n");
    std::vector<LintFinding> findings = lintSocConfig(cfg);
    ASSERT_EQ(findings.size(), 2u);
    for (const LintFinding &f : findings)
        EXPECT_FALSE(f.error);
    EXPECT_NE(findings[0].message.find("GPU"), std::string::npos);
    // A clean config yields no findings at all.
    EXPECT_TRUE(lintSocConfig(parseSocConfig(
                                  "[soc]\nppeak = 4e9\nbpeak = 9e9\n"
                                  "[ip CPU]\naccel = 1\n"
                                  "bandwidth = 6e9\n"
                                  "[usecase u]\nCPU = 1 @ 8\n"))
                    .empty());
    // No usecases at all is worth a nudge.
    std::vector<LintFinding> none = lintSocConfig(
        parseSocConfig("[soc]\nppeak = 4e9\nbpeak = 9e9\n"
                       "[ip CPU]\naccel = 1\nbandwidth = 6e9\n"));
    ASSERT_FALSE(none.empty());
    EXPECT_NE(none[0].message.find("no usecases"), std::string::npos);
}

TEST(Config, LintSortsErrorsFirst)
{
    // Hand-build a mismatched config (bypassing parseSocConfig) so an
    // error finding coexists with a warning.
    SocConfig cfg = parseSocConfig(
        "[soc]\nppeak = 4e9\nbpeak = 9e9\n"
        "[ip CPU]\naccel = 1\nbandwidth = 6e9\n"
        "[ip GPU]\naccel = 5\nbandwidth = 7e9\n");
    cfg.usecases.push_back(Usecase("tiny", {IpWork{1.0, 8.0}}));
    std::vector<LintFinding> findings = lintSocConfig(cfg);
    ASSERT_GE(findings.size(), 2u);
    EXPECT_TRUE(findings.front().error);
    EXPECT_NE(findings.front().message.find("covers 1 IPs"),
              std::string::npos);
    EXPECT_FALSE(findings.back().error);
}

TEST(Config, LoadFromFile)
{
    std::string path = ::testing::TempDir() + "gables_cfg_test.ini";
    {
        std::ofstream out(path);
        out << kPaperConfig;
    }
    SocConfig cfg = loadSocConfig(path);
    EXPECT_EQ(cfg.soc.numIps(), 2u);
    EXPECT_THROW(loadSocConfig("/nonexistent/nowhere.ini"),
                 FatalError);
}

} // namespace
} // namespace gables
