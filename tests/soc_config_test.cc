/**
 * @file
 * Tests for the SoC/usecase text configuration format.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/gables.h"
#include "soc/catalog.h"
#include "soc/config.h"
#include "util/logging.h"

namespace gables {
namespace {

const char *kPaperConfig = R"(
# The paper's Figure 6 two-IP SoC.
[soc]
name  = paper two-IP
ppeak = 40 Gops/s
bpeak = 10 GB/s

[ip CPU]
accel     = 1
bandwidth = 6 GB/s

[ip GPU]
accel     = 5
bandwidth = 15 GB/s

[usecase 6a]
CPU = 1.0 @ 8

[usecase 6b]
CPU = 0.25 @ 8
GPU = 0.75 @ 0.1  ; poor reuse
)";

TEST(Config, ParsesPaperSoc)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    EXPECT_EQ(cfg.soc.name(), "paper two-IP");
    EXPECT_DOUBLE_EQ(cfg.soc.ppeak(), 40e9);
    EXPECT_DOUBLE_EQ(cfg.soc.bpeak(), 10e9);
    ASSERT_EQ(cfg.soc.numIps(), 2u);
    EXPECT_EQ(cfg.soc.ip(0).name, "CPU");
    EXPECT_DOUBLE_EQ(cfg.soc.ip(1).acceleration, 5.0);
    EXPECT_DOUBLE_EQ(cfg.soc.ip(1).bandwidth, 15e9);
}

TEST(Config, ParsesUsecases)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    ASSERT_EQ(cfg.usecases.size(), 2u);
    const Usecase &u = cfg.usecase("6b");
    EXPECT_DOUBLE_EQ(u.fraction(0), 0.25);
    EXPECT_DOUBLE_EQ(u.intensity(1), 0.1);
    // The omitted IP in 6a defaults to zero work.
    EXPECT_DOUBLE_EQ(cfg.usecase("6a").fraction(1), 0.0);
}

TEST(Config, ParsedConfigEvaluatesLikeCatalog)
{
    SocConfig cfg = parseSocConfig(kPaperConfig);
    double parsed =
        GablesModel::evaluate(cfg.soc, cfg.usecase("6b")).attainable;
    double catalog = GablesModel::evaluate(
                         SocCatalog::paperTwoIp(),
                         Usecase::twoIp("6b", 0.75, 8.0, 0.1))
                         .attainable;
    EXPECT_DOUBLE_EQ(parsed, catalog);
}

TEST(Config, InfIntensity)
{
    SocConfig cfg = parseSocConfig(R"(
[soc]
ppeak = 1 Gops/s
bpeak = 1 GB/s
[ip X]
accel = 1
bandwidth = 1 GB/s
[usecase pure]
X = 1 @ inf
)");
    EXPECT_TRUE(std::isinf(cfg.usecase("pure").intensity(0)));
}

TEST(Config, CommentsAndWhitespaceTolerated)
{
    SocConfig cfg = parseSocConfig(
        "  [soc]  # header comment\n"
        "name=x\n"
        "  ppeak =  2e9 ; trailing\n"
        "bpeak=1e9\n"
        "[ip A]\n"
        "accel=1\n"
        "bandwidth=5e8\n");
    EXPECT_EQ(cfg.soc.name(), "x");
    EXPECT_DOUBLE_EQ(cfg.soc.ip(0).bandwidth, 5e8);
}

TEST(Config, ErrorsCarryLineNumbers)
{
    try {
        parseSocConfig("[soc]\nppeak = 1e9\nbpeak = 1e9\nbogus\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 4"),
                  std::string::npos);
    }
}

TEST(Config, RejectsStructuralProblems)
{
    EXPECT_THROW(parseSocConfig(""), FatalError); // no [soc]
    EXPECT_THROW(parseSocConfig("[soc]\nbpeak = 1e9\n[ip A]\n"
                                "accel = 1\nbandwidth = 1e9\n"),
                 FatalError); // no ppeak
    EXPECT_THROW(parseSocConfig("[soc]\nppeak = 1e9\nbpeak = 1e9\n"),
                 FatalError); // no IPs
    EXPECT_THROW(
        parseSocConfig("[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\n"
                       "accel=1\nbandwidth=1e9\n[ip A]\naccel=1\n"
                       "bandwidth=1e9\n"),
        FatalError); // duplicate IP
    EXPECT_THROW(
        parseSocConfig("[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\n"
                       "accel=1\nbandwidth=1e9\n[usecase u]\n"
                       "Ghost = 1 @ 1\n"),
        FatalError); // unknown IP in usecase
    EXPECT_THROW(parseSocConfig("key = value\n"),
                 FatalError); // key outside section
    EXPECT_THROW(parseSocConfig("[mystery]\n"), FatalError);
    EXPECT_THROW(parseSocConfig("[soc\n"), FatalError);
}

TEST(Config, RejectsBadWorkSyntax)
{
    const char *prefix = "[soc]\nppeak=1e9\nbpeak=1e9\n[ip A]\n"
                         "accel=1\nbandwidth=1e9\n[usecase u]\n";
    EXPECT_THROW(parseSocConfig(std::string(prefix) + "A = 0.5\n"),
                 FatalError); // missing @
    EXPECT_THROW(
        parseSocConfig(std::string(prefix) + "A = x @ 1\n"),
        FatalError);
    EXPECT_THROW(
        parseSocConfig(std::string(prefix) + "A = 1 @ fast\n"),
        FatalError);
    EXPECT_THROW(parseSocConfig(std::string(prefix) +
                                "A = 0.5 @ 1\nA = 0.5 @ 1\n"),
                 FatalError); // duplicate entry
}

TEST(Config, FormatRoundTrips)
{
    SocSpec soc = SocCatalog::snapdragon835();
    std::vector<Usecase> usecases = {
        Usecase("mix", {IpWork{0.25, 8.0}, IpWork{0.7, 0.5},
                        IpWork{0.05, 2.0}}),
        Usecase("pure", {IpWork{1.0,
                                std::numeric_limits<double>::infinity()},
                         IpWork{0.0, 1.0}, IpWork{0.0, 1.0}}),
    };
    std::string text = formatSocConfig(soc, usecases);
    SocConfig cfg = parseSocConfig(text);
    EXPECT_EQ(cfg.soc.name(), soc.name());
    EXPECT_DOUBLE_EQ(cfg.soc.bpeak(), soc.bpeak());
    ASSERT_EQ(cfg.usecases.size(), 2u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(cfg.usecase("mix").fraction(i),
                    usecases[0].fraction(i), 1e-9);
    }
    EXPECT_TRUE(std::isinf(cfg.usecase("pure").intensity(0)));
}

TEST(Config, LoadFromFile)
{
    std::string path = ::testing::TempDir() + "gables_cfg_test.ini";
    {
        std::ofstream out(path);
        out << kPaperConfig;
    }
    SocConfig cfg = loadSocConfig(path);
    EXPECT_EQ(cfg.soc.numIps(), 2u);
    EXPECT_THROW(loadSocConfig("/nonexistent/nowhere.ini"),
                 FatalError);
}

} // namespace
} // namespace gables
