/**
 * @file
 * Tests for dataflow graphs: traffic accounting, lowering to Gables
 * usecases, and frame-rate bottleneck analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "soc/catalog.h"
#include "soc/dataflow.h"
#include "util/logging.h"

namespace gables {
namespace {

/** A minimal two-stage pipeline: sensor -> A -> B -> (display). */
DataflowGraph
pipeline()
{
    DataflowGraph g("pipe");
    g.addStage("CPU", 1e9);
    g.addStage("GPU", 4e9);
    g.addBuffer("", "CPU", 10e6, "input");
    g.addBuffer("CPU", "GPU", 20e6, "intermediate");
    g.addBuffer("GPU", "", 5e6, "output");
    return g;
}

TEST(Dataflow, OpsAccumulatePerIp)
{
    DataflowGraph g("g");
    g.addStage("CPU", 1e9);
    g.addStage("CPU", 2e9);
    ASSERT_EQ(g.stages().size(), 1u);
    EXPECT_DOUBLE_EQ(g.stages()[0].opsPerFrame, 3e9);
    EXPECT_DOUBLE_EQ(g.opsPerFrame(), 3e9);
}

TEST(Dataflow, IpBytesCountBothDirections)
{
    DataflowGraph g = pipeline();
    // CPU: reads input (10M) + writes intermediate (20M).
    EXPECT_DOUBLE_EQ(g.ipBytesPerFrame("CPU"), 30e6);
    // GPU: reads intermediate (20M) + writes output (5M).
    EXPECT_DOUBLE_EQ(g.ipBytesPerFrame("GPU"), 25e6);
    EXPECT_DOUBLE_EQ(g.ipBytesPerFrame("DSP"), 0.0);
}

TEST(Dataflow, DramBytesCountWriteAndRead)
{
    DataflowGraph g = pipeline();
    // Each buffer is written once and read once: 2 * (10+20+5) MB.
    EXPECT_DOUBLE_EQ(g.dramBytesPerFrame(), 70e6);
}

TEST(Dataflow, SelfBufferModelsReferenceFrames)
{
    DataflowGraph g("tnr");
    g.addStage("ISP", 1e9);
    g.addBuffer("ISP", "ISP", 12e6, "reference");
    // The IP both writes and reads the reference: 24 MB of link
    // traffic, 24 MB of DRAM traffic.
    EXPECT_DOUBLE_EQ(g.ipBytesPerFrame("ISP"), 24e6);
    EXPECT_DOUBLE_EQ(g.dramBytesPerFrame(), 24e6);
}

TEST(Dataflow, UsesIpAndActiveIps)
{
    DataflowGraph g = pipeline();
    EXPECT_TRUE(g.usesIp("CPU"));
    EXPECT_TRUE(g.usesIp("GPU"));
    EXPECT_FALSE(g.usesIp("DSP"));
    auto active = g.activeIps();
    ASSERT_EQ(active.size(), 2u);
    EXPECT_EQ(active[0], "CPU");
    EXPECT_EQ(active[1], "GPU");
}

TEST(Dataflow, ValidationErrors)
{
    DataflowGraph g("g");
    EXPECT_THROW(g.addStage("", 1.0), FatalError);
    EXPECT_THROW(g.addStage("CPU", -1.0), FatalError);
    EXPECT_THROW(g.addBuffer("A", "B", 0.0), FatalError);
    EXPECT_THROW(g.addBuffer("", "", 10.0), FatalError);
}

TEST(Dataflow, ToUsecaseFractionsAndIntensities)
{
    SocSpec soc = SocCatalog::snapdragon835(); // CPU, GPU, DSP
    DataflowGraph g = pipeline();
    Usecase u = g.toUsecase(soc);
    EXPECT_DOUBLE_EQ(u.fraction(0), 0.2); // 1e9 of 5e9 total ops
    EXPECT_DOUBLE_EQ(u.fraction(1), 0.8);
    EXPECT_DOUBLE_EQ(u.fraction(2), 0.0);
    // Intensities: ops / link bytes.
    EXPECT_NEAR(u.intensity(0), 1e9 / 30e6, 1e-9);
    EXPECT_NEAR(u.intensity(1), 4e9 / 25e6, 1e-9);
}

TEST(Dataflow, ToUsecaseInfiniteIntensityForBufferlessStage)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("pure");
    g.addStage("CPU", 1e9);
    Usecase u = g.toUsecase(soc);
    EXPECT_TRUE(std::isinf(u.intensity(0)));
}

TEST(Dataflow, ToUsecaseUnknownIpFails)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("g");
    g.addStage("ISP", 1e9); // no ISP on the 3-IP spec
    EXPECT_THROW(g.toUsecase(soc), FatalError);
}

TEST(Dataflow, AnalyzeComputeBound)
{
    // GPU does 4e9 ops at 349.6e9 ops/s -> 11.44 ms; make buffers
    // tiny so compute binds.
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("compute");
    g.addStage("GPU", 4e9);
    g.addBuffer("", "GPU", 1e3, "tiny");
    DataflowAnalysis a = g.analyze(soc);
    EXPECT_EQ(a.bottleneckIp, 1);
    EXPECT_EQ(a.bottleneck, BottleneckKind::IpCompute);
    EXPECT_NEAR(a.maxFps, 349.6e9 / 4e9, 0.01);
}

TEST(Dataflow, AnalyzeMemoryBound)
{
    // Heavy buffers, light compute: DRAM binds.
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("stream");
    g.addStage("GPU", 1e6);
    g.addBuffer("", "GPU", 100e6, "in"); // 200 MB DRAM/frame
    DataflowAnalysis a = g.analyze(soc);
    EXPECT_EQ(a.bottleneckIp, -1);
    EXPECT_EQ(a.bottleneck, BottleneckKind::Memory);
    EXPECT_NEAR(a.maxFps, 29.8e9 / 200e6, 0.01);
    EXPECT_DOUBLE_EQ(a.dramBytesPerFrame, 200e6);
}

TEST(Dataflow, AnalyzeIpBandwidthBound)
{
    // DSP link is 5.4 GB/s; give it 54 MB of link traffic per frame
    // and negligible compute.
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("dsp-stream");
    g.addStage("DSP", 1e6);
    g.addBuffer("", "DSP", 54e6, "in");
    DataflowAnalysis a = g.analyze(soc);
    EXPECT_EQ(a.bottleneckIp, 2);
    EXPECT_EQ(a.bottleneck, BottleneckKind::IpBandwidth);
    EXPECT_NEAR(a.maxFps, 100.0, 0.5); // 5.4e9/54e6
}

TEST(Dataflow, AnalysisAgreesWithGablesOnIpTimes)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g = pipeline();
    DataflowAnalysis a = g.analyze(soc);
    Usecase u = g.toUsecase(soc);
    GablesResult r = GablesModel::evaluate(soc, u);
    // Per-IP: frame time * model perf-units should be consistent:
    // t_ip(frame) = ops_total * T_ip(per unit op).
    double total_ops = g.opsPerFrame();
    for (size_t i = 0; i < soc.numIps(); ++i)
        EXPECT_NEAR(a.ipTimes[i], r.ips[i].time * total_ops,
                    a.ipTimes[i] * 1e-9 + 1e-15);
}

TEST(Dataflow, EmptyGraphRejectedByLowering)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g("empty");
    EXPECT_THROW(g.toUsecase(soc), FatalError);
    EXPECT_THROW(g.analyze(soc), FatalError);
}

} // namespace
} // namespace gables
