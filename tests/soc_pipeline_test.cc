/**
 * @file
 * Tests for the frame-pipeline simulator, including the key
 * cross-validation: its steady-state throughput matches the analytic
 * frame-rate bound of DataflowGraph::analyze().
 */

#include <gtest/gtest.h>

#include <cmath>

#include "soc/catalog.h"
#include "soc/pipeline.h"
#include "soc/usecases.h"
#include "util/logging.h"

namespace gables {
namespace {

using sim::PipelineSim;
using sim::PipelineStats;

/** A single-stage streaming graph: sensor -> GPU -> display. */
DataflowGraph
singleStage(double ops, double in_bytes, double out_bytes)
{
    DataflowGraph g("single");
    g.addStage("GPU", ops);
    g.addBuffer("", "GPU", in_bytes, "in");
    g.addBuffer("GPU", "", out_bytes, "out");
    return g;
}

TEST(PipelineSim, ComputeBoundStageMatchesAnalytic)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g = singleStage(4e9, 1e3, 1e3);
    PipelineStats stats = PipelineSim(soc, g).run(32);
    DataflowAnalysis a = g.analyze(soc);
    EXPECT_NEAR(stats.steadyFps, a.maxFps, a.maxFps * 0.02);
}

TEST(PipelineSim, MemoryBoundGraphMatchesAnalytic)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g = singleStage(1e6, 100e6, 50e6);
    PipelineStats stats = PipelineSim(soc, g).run(64);
    DataflowAnalysis a = g.analyze(soc);
    EXPECT_EQ(a.bottleneck, BottleneckKind::Memory);
    EXPECT_NEAR(stats.steadyFps, a.maxFps, a.maxFps * 0.05);
}

TEST(PipelineSim, MultiStageCameraGraphsMatchAnalytic)
{
    // The whole catalog. The static bound assumes perfect transfer/
    // compute overlap and infinite buffering; the dynamic pipeline
    // (finite sensor ring, store-and-forward slices, reference
    // loops) lands at 70-100% of it and never beats it.
    SocSpec soc = SocCatalog::snapdragon835Full();
    for (const UsecaseEntry &entry : UsecaseCatalog::all()) {
        PipelineStats stats =
            PipelineSim(soc, entry.graph).run(96);
        DataflowAnalysis a = entry.graph.analyze(soc);
        EXPECT_GE(stats.steadyFps, a.maxFps * 0.70)
            << entry.graph.name();
        EXPECT_LE(stats.steadyFps, a.maxFps * 1.02)
            << entry.graph.name();
    }
}

TEST(PipelineSim, PacedSourceLimitsThroughput)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g = singleStage(4e9, 1e3, 1e3); // ~87 fps capable
    PipelineStats paced = PipelineSim(soc, g).run(32, 24.0);
    EXPECT_NEAR(paced.steadyFps, 24.0, 0.5);
}

TEST(PipelineSim, PacingAboveCapacityIsIgnoredByBottleneck)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g = singleStage(4e9, 1e3, 1e3);
    DataflowAnalysis a = g.analyze(soc);
    PipelineStats fast = PipelineSim(soc, g).run(32, 10000.0);
    EXPECT_NEAR(fast.steadyFps, a.maxFps, a.maxFps * 0.05);
}

TEST(PipelineSim, FrameTimesMonotone)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    DataflowGraph g = UsecaseCatalog::videocapture().graph;
    PipelineStats stats = PipelineSim(soc, g).run(16);
    for (int n = 1; n < stats.frames; ++n)
        EXPECT_GT(stats.frameDone[n], stats.frameDone[n - 1]);
    EXPECT_DOUBLE_EQ(stats.makespan, stats.frameDone.back());
}

TEST(PipelineSim, BottleneckResourceSaturates)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph g = singleStage(1e6, 100e6, 50e6); // memory bound
    PipelineStats stats = PipelineSim(soc, g).run(64);
    EXPECT_GT(stats.utilization("DRAM"), 0.85);
    EXPECT_THROW(stats.utilization("ghost"), FatalError);
}

TEST(PipelineSim, SelfBufferUsesPreviousFrame)
{
    // A TNR-style self-referencing stage must still pipeline (no
    // deadlock) and pay the reference traffic.
    SocSpec soc = SocCatalog::snapdragon835Full();
    DataflowGraph g("tnr");
    g.addStage("ISP", 1e8);
    g.addBuffer("", "ISP", 12e6, "raw");
    g.addBuffer("ISP", "ISP", 12e6, "reference");
    PipelineStats stats = PipelineSim(soc, g).run(64);
    DataflowAnalysis a = g.analyze(soc);
    // The reference loop serializes write -> read -> compute, which
    // the full-overlap analytic bound ignores; the pipeline lands
    // below the bound but must never beat it.
    EXPECT_GE(stats.steadyFps, a.maxFps * 0.70);
    EXPECT_LE(stats.steadyFps, a.maxFps * 1.02);
}

TEST(PipelineSim, DeterministicAcrossRuns)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    DataflowGraph g = UsecaseCatalog::googleLens().graph;
    PipelineStats a = PipelineSim(soc, g).run(24);
    PipelineStats b = PipelineSim(soc, g).run(24);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.steadyFps, b.steadyFps);
}

TEST(PipelineSim, InvalidInputsRejected)
{
    SocSpec soc = SocCatalog::snapdragon835();
    DataflowGraph empty("empty");
    EXPECT_THROW(PipelineSim(soc, empty), FatalError);

    DataflowGraph unknown("unknown");
    unknown.addStage("Mystery", 1e6);
    EXPECT_THROW(PipelineSim(soc, unknown), FatalError);

    DataflowGraph ok = singleStage(1e6, 1e3, 1e3);
    PipelineSim sim(soc, ok);
    EXPECT_THROW(sim.run(1), FatalError);
}

} // namespace
} // namespace gables
