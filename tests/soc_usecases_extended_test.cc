/**
 * @file
 * Tests for the extended usecase catalog (gaming, video call, AR
 * navigation) and their behaviour across the toolchain: analysis,
 * lowering, pipeline simulation, and robustness under the full SoC.
 */

#include <gtest/gtest.h>

#include "core/gables.h"
#include "soc/catalog.h"
#include "soc/pipeline.h"
#include "soc/usecases.h"

namespace gables {
namespace {

TEST(ExtendedUsecases, CatalogCounts)
{
    EXPECT_EQ(UsecaseCatalog::all().size(), 6u);
    EXPECT_EQ(UsecaseCatalog::extended().size(), 9u);
    EXPECT_EQ(UsecaseCatalog::extended()[6].graph.name(),
              "3D gaming");
}

TEST(ExtendedUsecases, GamingIsGpuCentric)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry gaming = UsecaseCatalog::gaming();
    Usecase u = gaming.graph.toUsecase(soc);
    // The GPU carries the overwhelming majority of the work.
    EXPECT_GT(u.fraction(kIpGpu), 0.5);
    DataflowAnalysis a = gaming.graph.analyze(soc);
    EXPECT_GE(a.maxFps, gaming.targetFps); // 60 fps sustainable
}

TEST(ExtendedUsecases, VideoCallUsesBothCodecs)
{
    // The defining property of a call: encode and decode at once.
    DataflowGraph g = UsecaseCatalog::videoCall().graph;
    EXPECT_TRUE(g.usesIp("VENC"));
    EXPECT_TRUE(g.usesIp("VDEC"));
    EXPECT_TRUE(g.usesIp("ISP"));
    EXPECT_TRUE(g.usesIp("GPU"));
    EXPECT_TRUE(g.usesIp("DSP"));
    // More concurrent IPs than any Table I row (7 of 10).
    EXPECT_GE(g.activeIps().size(), 7u);
}

TEST(ExtendedUsecases, AllExtendedMeetTargetsExceptKnownMisses)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        DataflowAnalysis a = entry.graph.analyze(soc);
        bool known_miss = entry.graph.name() == "Videocapture (HFR)" ||
                          entry.graph.name() == "Google Lens";
        if (known_miss)
            EXPECT_LT(a.maxFps, entry.targetFps) << entry.graph.name();
        else
            EXPECT_GE(a.maxFps, entry.targetFps) << entry.graph.name();
    }
}

TEST(ExtendedUsecases, AllLowerAndEvaluate)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    for (const UsecaseEntry &entry : UsecaseCatalog::extended()) {
        Usecase u = entry.graph.toUsecase(soc);
        EXPECT_NO_THROW(u.validate());
        EXPECT_GT(GablesModel::evaluate(soc, u).attainable, 0.0)
            << entry.graph.name();
    }
}

TEST(ExtendedUsecases, PipelineSimHandlesExtendedSet)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    for (const UsecaseEntry &entry :
         {UsecaseCatalog::gaming(), UsecaseCatalog::videoCall(),
          UsecaseCatalog::arNavigation()}) {
        sim::PipelineStats stats =
            sim::PipelineSim(soc, entry.graph).run(64);
        DataflowAnalysis a = entry.graph.analyze(soc);
        EXPECT_GE(stats.steadyFps, a.maxFps * 0.6)
            << entry.graph.name();
        EXPECT_LE(stats.steadyFps, a.maxFps * 1.02)
            << entry.graph.name();
    }
}

TEST(ExtendedUsecases, VideoCallHasSelfViewCrossFlow)
{
    // The ISP feeds both the encoder (send path) and the GPU
    // (self-view) — a fan-out the base camera usecases lack.
    DataflowGraph g = UsecaseCatalog::videoCall().graph;
    bool isp_to_venc = false, isp_to_gpu = false;
    for (const DataflowBuffer &b : g.buffers()) {
        isp_to_venc |= b.producer == "ISP" && b.consumer == "VENC";
        isp_to_gpu |= b.producer == "ISP" && b.consumer == "GPU";
    }
    EXPECT_TRUE(isp_to_venc);
    EXPECT_TRUE(isp_to_gpu);
}

TEST(ExtendedUsecases, ArNavigationClosesTheLoopThroughAp)
{
    // Camera -> IPU/DSP -> AP -> GPU: perception feeds rendering.
    DataflowGraph g = UsecaseCatalog::arNavigation().graph;
    bool ipu_to_ap = false, ap_to_gpu = false, dsp_to_ap = false;
    for (const DataflowBuffer &b : g.buffers()) {
        ipu_to_ap |= b.producer == "IPU" && b.consumer == "AP";
        dsp_to_ap |= b.producer == "DSP" && b.consumer == "AP";
        ap_to_gpu |= b.producer == "AP" && b.consumer == "GPU";
    }
    EXPECT_TRUE(ipu_to_ap);
    EXPECT_TRUE(dsp_to_ap);
    EXPECT_TRUE(ap_to_gpu);
}

TEST(ExtendedUsecases, TableOneUnaffected)
{
    // The Table I matrix stays the paper's five camera rows.
    EXPECT_EQ(UsecaseCatalog::tableOneMatrix().size(), 5u);
}

} // namespace
} // namespace gables
