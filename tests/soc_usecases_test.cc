/**
 * @file
 * Tests of the usecase catalog against the paper's Table I and the
 * Section II-B narrative (HFR memory pressure, concurrent IPs).
 */

#include <gtest/gtest.h>

#include "core/gables.h"
#include "soc/catalog.h"
#include "soc/usecases.h"

namespace gables {
namespace {

TEST(Usecases, CatalogHasSixEntries)
{
    auto all = UsecaseCatalog::all();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].graph.name(), "HDR+");
    EXPECT_EQ(all[5].graph.name(), "WiFi streaming");
}

TEST(Usecases, TableOneColumnOrder)
{
    const auto &cols = UsecaseCatalog::ipColumns();
    ASSERT_EQ(cols.size(), 10u);
    EXPECT_EQ(cols[kIpAp], "AP");
    EXPECT_EQ(cols[kIpG2ds], "G2DS");
    EXPECT_EQ(cols[kIpVenc], "VENC");
    EXPECT_EQ(cols[kIpDsp], "DSP");
}

TEST(Usecases, TableOneRowActiveCounts)
{
    // Paper Table I: HDR+ exercises 6 IPs, the other four camera
    // usecases 5 each.
    auto matrix = UsecaseCatalog::tableOneMatrix();
    ASSERT_EQ(matrix.size(), 5u);
    std::vector<int> expected = {6, 5, 5, 5, 5};
    for (size_t row = 0; row < matrix.size(); ++row) {
        int active = 0;
        for (bool cell : matrix[row].second)
            active += cell ? 1 : 0;
        EXPECT_EQ(active, expected[row]) << matrix[row].first;
    }
}

TEST(Usecases, EveryCameraUsecaseUsesApConcurrently)
{
    // Section II-B: the AP coordinates every usecase, and multiple
    // IPs are exercised concurrently ("at least half of all IPs" in
    // the camera cases means >= 5 of 10).
    auto matrix = UsecaseCatalog::tableOneMatrix();
    for (const auto &[name, row] : matrix) {
        EXPECT_TRUE(row[kIpAp]) << name;
        int active = 0;
        for (bool cell : row)
            active += cell ? 1 : 0;
        EXPECT_GE(active, 5) << name;
    }
}

TEST(Usecases, DifferentUsecasesUseDifferentIpSets)
{
    auto matrix = UsecaseCatalog::tableOneMatrix();
    for (size_t a = 0; a < matrix.size(); ++a) {
        for (size_t b = a + 1; b < matrix.size(); ++b)
            EXPECT_NE(matrix[a].second, matrix[b].second)
                << matrix[a].first << " vs " << matrix[b].first;
    }
}

TEST(Usecases, SpecificMemberships)
{
    auto matrix = UsecaseCatalog::tableOneMatrix();
    // HDR+ uses the IPU (Pixel Visual Core) and JPEG but no VENC.
    const auto &hdr = matrix[0].second;
    EXPECT_TRUE(hdr[kIpIpu]);
    EXPECT_TRUE(hdr[kIpJpeg]);
    EXPECT_FALSE(hdr[kIpVenc]);
    // Video capture uses VENC but no VDEC.
    const auto &cap = matrix[1].second;
    EXPECT_TRUE(cap[kIpVenc]);
    EXPECT_FALSE(cap[kIpVdec]);
    // Playback uses VDEC and the GPU.
    const auto &play = matrix[3].second;
    EXPECT_TRUE(play[kIpVdec]);
    EXPECT_TRUE(play[kIpGpu]);
    EXPECT_FALSE(play[kIpVenc]);
}

TEST(Usecases, HfrIsMemoryBoundAndMissesTarget)
{
    // The paper's Section II-B example: 4K240 capture overwhelms the
    // ~30 GB/s of DRAM bandwidth.
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry hfr = UsecaseCatalog::videocaptureHfr();
    DataflowAnalysis a = hfr.graph.analyze(soc);
    EXPECT_EQ(a.bottleneck, BottleneckKind::Memory);
    EXPECT_LT(a.maxFps, hfr.targetFps); // 240 fps is not sustainable
    // Demand at 240 fps exceeds Bpeak.
    EXPECT_GT(a.dramBytesPerFrame * hfr.targetFps, soc.bpeak());
}

TEST(Usecases, RegularCaptureMeetsItsTarget)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    UsecaseEntry cap = UsecaseCatalog::videocapture();
    DataflowAnalysis a = cap.graph.analyze(soc);
    EXPECT_GE(a.maxFps, cap.targetFps);
}

TEST(Usecases, WifiStreamingMatchesFigure4Flow)
{
    DataflowGraph g = UsecaseCatalog::wifiStreaming().graph;
    // The AP feeds both the video decoder and the audio DSP.
    bool ap_to_vdec = false, ap_to_dsp = false, vdec_to_display = false;
    for (const DataflowBuffer &b : g.buffers()) {
        ap_to_vdec |= b.producer == "AP" && b.consumer == "VDEC";
        ap_to_dsp |= b.producer == "AP" && b.consumer == "DSP";
        vdec_to_display |=
            b.producer == "VDEC" && b.consumer == "Display";
    }
    EXPECT_TRUE(ap_to_vdec);
    EXPECT_TRUE(ap_to_dsp);
    EXPECT_TRUE(vdec_to_display);
}

TEST(Usecases, AllLowerToValidGablesUsecases)
{
    SocSpec soc = SocCatalog::snapdragon835Full();
    for (const UsecaseEntry &entry : UsecaseCatalog::all()) {
        Usecase u = entry.graph.toUsecase(soc);
        EXPECT_NO_THROW(u.validate());
        GablesResult r = GablesModel::evaluate(soc, u);
        EXPECT_GT(r.attainable, 0.0) << entry.graph.name();
    }
}

TEST(Usecases, FrameGeometryConstants)
{
    // The paper: a 4K YUV420 frame is ~12 MB (6 bytes per 4 pixels).
    EXPECT_NEAR(UsecaseCatalog::k4kYuvBytes, 12.4e6, 0.1e6);
    EXPECT_NEAR(UsecaseCatalog::k1080pYuvBytes, 3.1e6, 0.05e6);
}

} // namespace
} // namespace gables
