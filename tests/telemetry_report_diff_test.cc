/**
 * @file
 * Tests of the run-report diff engine behind `gables report diff`:
 * exact and tolerant numeric comparison, the one-sided --min-ratio
 * perf gate, ignore lists (keys, dotted paths, prefixes), structural
 * mismatches, the always-exact schema subtree, and diff truncation.
 */

#include <gtest/gtest.h>

#include "telemetry/report_diff.h"
#include "util/json_reader.h"

namespace gables {
namespace telemetry {
namespace {

ReportDiffResult
diffText(const std::string &a, const std::string &b,
         const ReportDiffOptions &options = {})
{
    JsonValue da = parseJson(a);
    JsonValue db = parseJson(b);
    return diffReports(da, db, options);
}

TEST(ReportDiff, IdenticalDocumentsMatch)
{
    const std::string doc =
        R"({"schema": {"name": "r", "version": 1},)"
        R"( "stats": {"x": [1, 2.5, 3]}, "s": "hello"})";
    ReportDiffResult result = diffText(doc, doc);
    EXPECT_TRUE(result.identical());
    EXPECT_EQ(result.diffs.size(), 0u);
    EXPECT_GT(result.fieldsCompared, 0u);
    EXPECT_FALSE(result.truncated);
}

TEST(ReportDiff, NumericDifferenceIsLocatedByDottedPath)
{
    ReportDiffResult result =
        diffText(R"({"a": {"b": [1, 2, 3]}})",
                 R"({"a": {"b": [1, 9, 3]}})");
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_EQ(result.diffs[0].path, "a.b[1]");
    std::string text = formatDiff(result);
    EXPECT_NE(text.find("a.b[1]"), std::string::npos);
    EXPECT_NE(text.find("2"), std::string::npos);
    EXPECT_NE(text.find("9"), std::string::npos);
}

TEST(ReportDiff, RelativeToleranceBoundary)
{
    ReportDiffOptions loose;
    loose.tolRel = 0.05;
    // |100 - 105| = 5 <= 0.05 * max(100, 105) = 5.25.
    EXPECT_TRUE(
        diffText(R"({"v": 100})", R"({"v": 105})", loose).identical());

    ReportDiffOptions tight;
    tight.tolRel = 0.04;
    EXPECT_FALSE(
        diffText(R"({"v": 100})", R"({"v": 105})", tight).identical());
}

TEST(ReportDiff, AbsoluteToleranceBoundary)
{
    ReportDiffOptions options;
    options.tolAbs = 0.5;
    EXPECT_TRUE(diffText(R"({"v": 1.0})", R"({"v": 1.4})", options)
                    .identical());
    EXPECT_FALSE(diffText(R"({"v": 1.0})", R"({"v": 1.6})", options)
                     .identical());
}

TEST(ReportDiff, MinRatioGateIsOneSided)
{
    ReportDiffOptions gate;
    gate.minRatio = 0.85;
    // Regressions below the ratio fail...
    EXPECT_FALSE(diffText(R"({"perf": 100})", R"({"perf": 80})", gate)
                     .identical());
    // ...staying above it passes...
    EXPECT_TRUE(diffText(R"({"perf": 100})", R"({"perf": 90})", gate)
                    .identical());
    // ...and improvements of any size pass (the one-sided contract
    // that a symmetric tolerance cannot express).
    EXPECT_TRUE(diffText(R"({"perf": 100})", R"({"perf": 300})", gate)
                    .identical());
}

TEST(ReportDiff, MinRatioOverridesSymmetricTolerances)
{
    ReportDiffOptions options;
    options.minRatio = 0.99;
    options.tolRel = 10.0; // would accept anything on its own
    EXPECT_FALSE(diffText(R"({"perf": 100})", R"({"perf": 50})",
                          options)
                     .identical());
}

TEST(ReportDiff, IgnoreMatchesKeyPathAndPrefix)
{
    const std::string a =
        R"({"meta": {"seconds": 1}, "x": {"seconds": 2, "keep": 3}})";
    const std::string b =
        R"({"meta": {"seconds": 9}, "x": {"seconds": 9, "keep": 3}})";

    // Bare key name: matched wherever the member appears.
    ReportDiffOptions by_key;
    by_key.ignore = {"seconds"};
    EXPECT_TRUE(diffText(a, b, by_key).identical());

    // Full dotted path: only that one field.
    ReportDiffOptions by_path;
    by_path.ignore = {"meta.seconds"};
    ReportDiffResult result = diffText(a, b, by_path);
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_EQ(result.diffs[0].path, "x.seconds");

    // Prefix: the whole subtree under it.
    ReportDiffOptions by_prefix;
    by_prefix.ignore = {"meta", "x"};
    EXPECT_TRUE(diffText(a, b, by_prefix).identical());

    // An ignored field no longer counts as compared.
    EXPECT_LT(diffText(a, b, by_key).fieldsCompared,
              diffText(a, a).fieldsCompared);
}

TEST(ReportDiff, MissingMembersReportedBothWays)
{
    ReportDiffResult gone =
        diffText(R"({"x": 1, "y": 2})", R"({"x": 1})");
    ASSERT_EQ(gone.diffs.size(), 1u);
    EXPECT_EQ(gone.diffs[0].path, "y");

    ReportDiffResult added =
        diffText(R"({"x": 1})", R"({"x": 1, "z": 3})");
    ASSERT_EQ(added.diffs.size(), 1u);
    EXPECT_EQ(added.diffs[0].path, "z");
}

TEST(ReportDiff, TypeMismatchIsOneDiffNotARecursion)
{
    ReportDiffResult result =
        diffText(R"({"x": {"deep": [1, 2, 3]}})", R"({"x": 7})");
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_EQ(result.diffs[0].path, "x");
}

TEST(ReportDiff, ArrayLengthMismatch)
{
    ReportDiffResult result =
        diffText(R"({"v": [1, 2, 3]})", R"({"v": [1, 2]})");
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_EQ(result.diffs[0].path, "v");
}

TEST(ReportDiff, SchemaSubtreeIsAlwaysExact)
{
    ReportDiffOptions options;
    options.tolRel = 0.5; // generous everywhere else
    ReportDiffResult result = diffText(
        R"({"schema": {"version": 1}, "v": 100})",
        R"({"schema": {"version": 1.2}, "v": 120})", options);
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_EQ(result.diffs[0].path, "schema.version");
}

TEST(ReportDiff, TruncatesAtMaxDiffs)
{
    ReportDiffOptions options;
    options.maxDiffs = 2;
    ReportDiffResult result = diffText(
        R"({"v": [1, 2, 3, 4, 5]})", R"({"v": [9, 9, 9, 9, 9]})",
        options);
    EXPECT_EQ(result.diffs.size(), 2u);
    EXPECT_TRUE(result.truncated);
    EXPECT_FALSE(result.identical());
    std::string text = formatDiff(result);
    EXPECT_NE(text.find("truncated"), std::string::npos);
}

TEST(ReportDiff, AddIgnoreSpecsSplitsCommaLists)
{
    // `--ignore a,b --ignore c` and `--ignore a --ignore b --ignore c`
    // must produce the same ignore list.
    ReportDiffOptions comma;
    addIgnoreSpecs(comma, {"profile,parallel.worker_busy_s", "meta"});
    ReportDiffOptions repeated;
    addIgnoreSpecs(repeated,
                   {"profile", "parallel.worker_busy_s", "meta"});
    EXPECT_EQ(comma.ignore, repeated.ignore);
    ASSERT_EQ(comma.ignore.size(), 3u);
    EXPECT_EQ(comma.ignore[1], "parallel.worker_busy_s");

    // Empty fragments from stray commas are dropped, not matched.
    ReportDiffOptions stray;
    addIgnoreSpecs(stray, {",seconds,", ""});
    EXPECT_EQ(stray.ignore, std::vector<std::string>{"seconds"});

    // Specs append to (not replace) an existing list.
    ReportDiffOptions appended;
    appended.ignore = {"keep"};
    addIgnoreSpecs(appended, {"seconds"});
    ASSERT_EQ(appended.ignore.size(), 2u);
    EXPECT_EQ(appended.ignore[0], "keep");

    // And the split list actually drives the diff.
    const std::string a =
        R"({"meta": {"seconds": 1}, "x": {"seconds": 2, "keep": 3}})";
    const std::string b =
        R"({"meta": {"seconds": 9}, "x": {"seconds": 9, "keep": 3}})";
    ReportDiffOptions both;
    addIgnoreSpecs(both, {"meta.seconds,x.seconds"});
    EXPECT_TRUE(diffText(a, b, both).identical());
}

TEST(ReportDiff, StringAndBoolLeavesCompareExactly)
{
    EXPECT_FALSE(diffText(R"({"s": "a"})", R"({"s": "b"})")
                     .identical());
    EXPECT_FALSE(diffText(R"({"b": true})", R"({"b": false})")
                     .identical());
    ReportDiffOptions options;
    options.tolRel = 100.0; // tolerances never apply to non-numbers
    EXPECT_FALSE(
        diffText(R"({"s": "a"})", R"({"s": "b"})", options)
            .identical());
}

} // namespace
} // namespace telemetry
} // namespace gables
