/**
 * @file
 * Round-trip tests of the RunReport artifact: driver-shaped reports
 * are written, parsed back through util/json_reader, checked for
 * schema header and section order, and self-diffed through the same
 * engine `gables report diff` uses. A perturbed copy must diff
 * nonzero, and a profile subtree must survive the trip when a span
 * tracer is attached.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/report.h"
#include "telemetry/report_diff.h"
#include "telemetry/span.h"
#include "telemetry/stats.h"
#include "util/json_reader.h"

namespace gables {
namespace telemetry {
namespace {

std::string
writeToString(const RunReport &report)
{
    std::ostringstream out;
    report.write(out);
    return out.str();
}

/**
 * A report shaped like each driver's --metrics output: generator,
 * config echo, and a stats registry with that driver's metric kinds.
 */
void
fillDriverReport(const std::string &generator, RunReport &report,
                 StatsRegistry &reg)
{
    report.addConfig("soc", std::string("sd835"));
    report.addConfig("points", 64L);
    report.addConfig("step", 0.01);
    if (generator == "gables sim") {
        report.setDuration(0.125);
        report.addEngine({"CPU", 1e9, 2e8, 1e7, 8e9});
        report.addResource({"DRAM", 2e8, 0.1, 0.8});
        report.addDelta("CPU", 8.2e9, 8.0e9);
        reg.counter(generator + ".events", "events drained").add(1e6);
        reg.distribution("queue.depth").sample(3.0);
    } else if (generator == "gables sweep") {
        TimeSeries &s = reg.timeSeries("mixing.normalized_perf");
        s.sample(0.0, 1.0);
        s.sample(0.5, 2.0);
        reg.counter("model.evals").add(64.0);
    } else if (generator == "gables sensitivity") {
        reg.gauge("sensitivity.Ppeak").set(0.0);
        reg.gauge("sensitivity.Bpeak").set(1.0);
    } else {
        reg.gauge(generator + ".result").set(42.0);
        reg.counter(generator + ".iterations").add(7.0);
    }
    report.setRegistry(&reg);
}

const std::vector<std::string> kDrivers = {
    "gables eval",    "gables sweep",     "gables sim",
    "gables ert",     "gables explore",   "gables advise",
    "gables provision", "gables sensitivity",
};

TEST(RunReportRoundTrip, SchemaHeaderAndSectionOrder)
{
    RunReport report("gables sim", "Snapdragon 835");
    StatsRegistry reg;
    fillDriverReport("gables sim", report, reg);

    JsonValue doc = parseJson(writeToString(report));
    EXPECT_EQ(doc.at("schema").at("name").asString(),
              RunReport::kSchemaName);
    EXPECT_DOUBLE_EQ(doc.at("schema").at("version").asNumber(),
                     RunReport::kSchemaVersion);
    EXPECT_EQ(doc.at("generator").asString(), "gables sim");
    EXPECT_EQ(doc.at("subject").asString(), "Snapdragon 835");

    // Section order is part of the artifact contract.
    std::vector<std::string> keys;
    for (const auto &member : doc.members())
        keys.push_back(member.first);
    const std::vector<std::string> expected = {
        "schema",  "generator", "subject",      "config",
        "duration_s", "engines", "resources", "model_vs_sim",
        "stats",
    };
    EXPECT_EQ(keys, expected);
}

TEST(RunReportRoundTrip, EveryDriverShapeSelfDiffsClean)
{
    for (const std::string &driver : kDrivers) {
        RunReport report(driver, "test subject");
        StatsRegistry reg;
        fillDriverReport(driver, report, reg);

        JsonValue doc = parseJson(writeToString(report));
        ReportDiffResult result = diffReports(doc, doc);
        EXPECT_TRUE(result.identical()) << driver;
        EXPECT_GT(result.fieldsCompared, 0u) << driver;
    }
}

TEST(RunReportRoundTrip, PerturbedReportDiffsNonzero)
{
    RunReport a("gables sweep", "subject");
    StatsRegistry reg_a;
    fillDriverReport("gables sweep", a, reg_a);

    RunReport b("gables sweep", "subject");
    StatsRegistry reg_b;
    fillDriverReport("gables sweep", b, reg_b);
    reg_b.counter("model.evals").add(1.0); // 64 -> 65

    JsonValue da = parseJson(writeToString(a));
    JsonValue db = parseJson(writeToString(b));
    ReportDiffResult result = diffReports(da, db);
    ASSERT_EQ(result.diffs.size(), 1u);
    EXPECT_EQ(result.diffs[0].path, "stats.model.evals.value");

    // The CI gate's tolerance makes the same pair pass.
    ReportDiffOptions loose;
    loose.tolRel = 0.05;
    EXPECT_TRUE(diffReports(da, db, loose).identical());
}

TEST(RunReportRoundTrip, ProfileSubtreeSurvivesWhenTracerAttached)
{
    SpanTracer tracer;
    SpanTracer::setActive(&tracer);
    {
        GABLES_SPAN("gables.sweep");
        { GABLES_SPAN("sweep.grid"); }
    }
    SpanTracer::setActive(nullptr);

    RunReport report("gables sweep", "subject");
    StatsRegistry reg;
    fillDriverReport("gables sweep", report, reg);
    report.setProfile(&tracer);

    JsonValue doc = parseJson(writeToString(report));
    ASSERT_TRUE(doc.has("profile"));
    // "profile" sits immediately before "stats".
    const auto &members = doc.members();
    ASSERT_GE(members.size(), 2u);
    EXPECT_EQ(members[members.size() - 2].first, "profile");
    EXPECT_EQ(members[members.size() - 1].first, "stats");

    const JsonValue &prof = doc.at("profile");
    EXPECT_GE(prof.at("wall_s").asNumber(), 0.0);
    ASSERT_EQ(prof.at("spans").size(), 1u);
    const JsonValue &root_span = prof.at("spans").at(0);
    EXPECT_EQ(root_span.at("name").asString(), "gables.sweep");
    EXPECT_EQ(root_span.at("children").at(0).at("name").asString(),
              "sweep.grid");

    // A profiled report still self-diffs clean.
    EXPECT_TRUE(diffReports(doc, doc).identical());

    // Detaching the tracer keeps the report profile-free: the PR 1
    // byte-identity contract.
    RunReport plain("gables sweep", "subject");
    StatsRegistry reg2;
    fillDriverReport("gables sweep", plain, reg2);
    plain.setProfile(nullptr);
    JsonValue doc2 = parseJson(writeToString(plain));
    EXPECT_FALSE(doc2.has("profile"));
}

TEST(RunReportRoundTrip, EmptyRegistryStillWellFormed)
{
    RunReport report("gables eval", "subject");
    JsonValue doc = parseJson(writeToString(report));
    EXPECT_TRUE(doc.at("stats").isObject());
    EXPECT_EQ(doc.at("stats").size(), 0u);
    EXPECT_TRUE(diffReports(doc, doc).identical());
}

} // namespace
} // namespace telemetry
} // namespace gables
