/**
 * @file
 * Tests of the self-profiling span tracer: nesting and self-time
 * accounting, cross-thread aggregation, open-span snapshots, the
 * disabled-tracer no-op path, the per-thread event-log cap, and the
 * JSON "profile" emission (validated by parsing it back).
 */

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/span.h"
#include "util/json_reader.h"
#include "util/json_writer.h"

namespace gables {
namespace telemetry {
namespace {

/** Installs a tracer for the test body and always deactivates it. */
class ActiveTracer
{
  public:
    ActiveTracer() { SpanTracer::setActive(&tracer_); }
    ~ActiveTracer() { SpanTracer::setActive(nullptr); }
    SpanTracer &operator*() { return tracer_; }
    SpanTracer *operator->() { return &tracer_; }

  private:
    SpanTracer tracer_;
};

void
spinFor(double seconds)
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
    }
}

const ProfileNode *
findChild(const ProfileNode &node, const std::string &name)
{
    for (const ProfileNode &c : node.children)
        if (c.name == name)
            return &c;
    return nullptr;
}

TEST(ScopedSpan, NoActiveTracerIsANoOp)
{
    ASSERT_EQ(SpanTracer::active(), nullptr);
    {
        GABLES_SPAN("ignored");
        ScopedSpan also_ignored("ignored too");
    }
    EXPECT_EQ(SpanTracer::active(), nullptr);
}

TEST(SpanTracer, NestingAggregatesCountsAndSelfTime)
{
    ActiveTracer tracer;
    for (int rep = 0; rep < 3; ++rep) {
        GABLES_SPAN("outer");
        spinFor(0.002);
        {
            GABLES_SPAN("inner");
            spinFor(0.002);
        }
    }

    ProfileNode root = tracer->snapshot();
    ASSERT_EQ(root.children.size(), 1u);
    const ProfileNode &outer = root.children[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.count, 3u);
    ASSERT_EQ(outer.children.size(), 1u);
    const ProfileNode &inner = outer.children[0];
    EXPECT_EQ(inner.name, "inner");
    EXPECT_EQ(inner.count, 3u);

    // The child's time is inside the parent's total but not its self.
    EXPECT_GE(outer.totalSeconds, inner.totalSeconds);
    EXPECT_NEAR(outer.selfSeconds,
                outer.totalSeconds - inner.totalSeconds, 1e-9);
    EXPECT_GE(inner.totalSeconds, 0.9 * 3 * 0.002);
    EXPECT_GE(outer.selfSeconds, 0.9 * 3 * 0.002);
}

TEST(SpanTracer, SameNameSiblingsMergeDistinctNamesDoNot)
{
    ActiveTracer tracer;
    {
        GABLES_SPAN("phase");
        { GABLES_SPAN("a"); }
        { GABLES_SPAN("b"); }
        { GABLES_SPAN("a"); }
    }
    ProfileNode root = tracer->snapshot();
    const ProfileNode *phase = findChild(root, "phase");
    ASSERT_NE(phase, nullptr);
    ASSERT_EQ(phase->children.size(), 2u);
    // First-entry order is preserved by the merge.
    EXPECT_EQ(phase->children[0].name, "a");
    EXPECT_EQ(phase->children[0].count, 2u);
    EXPECT_EQ(phase->children[1].name, "b");
    EXPECT_EQ(phase->children[1].count, 1u);
}

TEST(SpanTracer, ThreadsAggregateIntoOneTree)
{
    ActiveTracer tracer;
    constexpr int kThreads = 4;
    {
        GABLES_SPAN("main.phase");
        std::vector<std::thread> pool;
        for (int t = 0; t < kThreads; ++t)
            pool.emplace_back([] {
                GABLES_SPAN("worker");
                spinFor(0.001);
            });
        for (std::thread &t : pool)
            t.join();
    }

    // Main thread plus each worker registered its own state.
    EXPECT_EQ(tracer->threadCount(), 1u + kThreads);

    ProfileNode root = tracer->snapshot();
    // Workers open "worker" as an outermost span on their threads, so
    // it merges as a root child, not under "main.phase".
    const ProfileNode *worker = findChild(root, "worker");
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->count, static_cast<uint64_t>(kThreads));
    const ProfileNode *phase = findChild(root, "main.phase");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->count, 1u);
}

TEST(SpanTracer, OpenSpanContributesElapsedAtSnapshot)
{
    ActiveTracer tracer;
    tracer->begin("still.open");
    spinFor(0.002);

    ProfileNode root = tracer->snapshot();
    const ProfileNode *open = findChild(root, "still.open");
    ASSERT_NE(open, nullptr);
    EXPECT_EQ(open->count, 1u);
    EXPECT_GE(open->totalSeconds, 0.9 * 0.002);
    tracer->end();
}

TEST(SpanTracer, RootSpanTotalTracksWallTime)
{
    ActiveTracer tracer;
    // Mirrors the CLI: the root span opens right after the tracer is
    // installed and is still open when the report is written.
    tracer->begin("gables.cmd");
    spinFor(0.02);

    ProfileNode root = tracer->snapshot();
    double wall = tracer->wallSeconds();
    ASSERT_EQ(root.children.size(), 1u);
    double total = root.children[0].totalSeconds;
    EXPECT_GT(total, 0.0);
    // Acceptance criterion: root span total within 5% of wall time.
    EXPECT_NEAR(total, wall, 0.05 * wall);
    tracer->end();
}

TEST(SpanTracer, EventsCarryDottedPathsAndThreadIndex)
{
    ActiveTracer tracer;
    {
        GABLES_SPAN("outer");
        { GABLES_SPAN("inner"); }
    }
    std::vector<SpanEvent> events = tracer->events();
    ASSERT_EQ(events.size(), 2u);
    // Inner closes first, so it is recorded first.
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[0].path, "outer.inner");
    EXPECT_EQ(events[1].name, "outer");
    EXPECT_EQ(events[1].path, "outer");
    EXPECT_EQ(events[0].thread, 0u);
    EXPECT_GE(events[1].durationSeconds, events[0].durationSeconds);
    EXPECT_LE(events[1].startSeconds, events[0].startSeconds);
}

TEST(SpanTracer, EventLogCapsButAggregationDoesNot)
{
    ActiveTracer tracer;
    const size_t extra = 10;
    const size_t total = SpanTracer::kMaxEventsPerThread + extra;
    for (size_t i = 0; i < total; ++i) {
        GABLES_SPAN("tick");
    }
    EXPECT_EQ(tracer->droppedEvents(), extra);
    EXPECT_EQ(tracer->events().size(),
              SpanTracer::kMaxEventsPerThread);
    ProfileNode root = tracer->snapshot();
    const ProfileNode *tick = findChild(root, "tick");
    ASSERT_NE(tick, nullptr);
    EXPECT_EQ(tick->count, total);
}

TEST(SpanTracer, WriteProfileEmitsParsableJson)
{
    ActiveTracer tracer;
    {
        GABLES_SPAN("top");
        { GABLES_SPAN("leaf"); }
    }

    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginObject();
    json.key("profile");
    tracer->writeProfile(json);
    json.endObject();
    json.done();

    JsonValue doc = parseJson(out.str());
    const JsonValue &prof = doc.at("profile");
    EXPECT_GT(prof.at("wall_s").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(prof.at("threads").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(prof.at("events_dropped").asNumber(), 0.0);
    const JsonValue &spans = prof.at("spans");
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans.at(0).at("name").asString(), "top");
    EXPECT_DOUBLE_EQ(spans.at(0).at("count").asNumber(), 1.0);
    const JsonValue &kids = spans.at(0).at("children");
    ASSERT_EQ(kids.size(), 1u);
    EXPECT_EQ(kids.at(0).at("name").asString(), "leaf");
    // Leaves omit an empty children array entirely.
    EXPECT_FALSE(kids.at(0).has("children"));
}

TEST(SpanTracer, SummaryTableListsSpans)
{
    ActiveTracer tracer;
    {
        GABLES_SPAN("alpha");
        { GABLES_SPAN("beta"); }
    }
    std::string table = tracer->summaryTable();
    EXPECT_NE(table.find("alpha"), std::string::npos);
    EXPECT_NE(table.find("beta"), std::string::npos);
    EXPECT_NE(table.find("count"), std::string::npos);
}

TEST(SpanTracer, DeactivationStopsRecording)
{
    SpanTracer tracer;
    SpanTracer::setActive(&tracer);
    { GABLES_SPAN("recorded"); }
    SpanTracer::setActive(nullptr);
    { GABLES_SPAN("not.recorded"); }

    ProfileNode root = tracer.snapshot();
    EXPECT_NE(findChild(root, "recorded"), nullptr);
    EXPECT_EQ(findChild(root, "not.recorded"), nullptr);
}

} // namespace
} // namespace telemetry
} // namespace gables
