/**
 * @file
 * Tests of the telemetry stats primitives: counter, distribution,
 * histogram, time-series, and registry semantics, plus the JSON dump
 * (validated by parsing it back).
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "telemetry/stats.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace gables {
namespace telemetry {
namespace {

TEST(Counter, AccumulatesAndResets)
{
    Counter c;
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    c.add();
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Distribution, EmptyIsAllZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Distribution, MomentsMatchKnownSamples)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.sum(), 40.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    // Population stddev of the classic example is exactly 2.
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    d.sample(-1.0);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), -1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5); // buckets [0,2) [2,4) ... [8,10)
    h.sample(-0.5);            // underflow
    h.sample(0.0);             // bucket 0
    h.sample(1.999);           // bucket 0
    h.sample(2.0);             // bucket 1
    h.sample(9.999);           // bucket 4
    h.sample(10.0);            // overflow
    h.sample(1e9);             // overflow
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 8.0);
}

TEST(Histogram, RejectsBadBounds)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), FatalError);
}

TEST(TimeSeries, KeepsSampleOrder)
{
    TimeSeries s;
    s.sample(0.0, 1.0);
    s.sample(0.5, 0.25);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.times()[1], 0.5);
    EXPECT_DOUBLE_EQ(s.values()[1], 0.25);
    s.reset();
    EXPECT_EQ(s.size(), 0u);
}

TEST(StatsRegistry, SameNameReturnsSameStat)
{
    StatsRegistry reg;
    Counter &a = reg.counter("x.requests", "first");
    Counter &b = reg.counter("x.requests", "ignored on re-register");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);
    a.add(3.0);
    EXPECT_DOUBLE_EQ(reg.findCounter("x.requests")->value(), 3.0);
}

TEST(StatsRegistry, KindMismatchIsFatal)
{
    StatsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.distribution("x"), FatalError);
    EXPECT_THROW(reg.histogram("x", 0.0, 1.0, 4), FatalError);
    EXPECT_THROW(reg.timeSeries("x"), FatalError);
}

TEST(StatsRegistry, KindMismatchDiagnosticNamesBothKinds)
{
    StatsRegistry reg;
    reg.counter("x.requests");
    try {
        reg.gauge("x.requests");
        FAIL() << "kind mismatch must throw";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("stats-registry"), std::string::npos);
        EXPECT_NE(what.find("x.requests"), std::string::npos);
        EXPECT_NE(what.find("counter"), std::string::npos);
        EXPECT_NE(what.find("gauge"), std::string::npos);
    }
}

TEST(StatsRegistry, ConflictingDescriptionsWarnOnceAndCount)
{
    StatsRegistry reg;
    EXPECT_EQ(reg.duplicateRegistrations(), 0u);

    Counter &a = reg.counter("x.requests", "requests served");
    // Same name, kind, and description: the supported re-attach.
    Counter &b = reg.counter("x.requests", "requests served");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.duplicateRegistrations(), 0u);

    // An empty description never conflicts.
    reg.counter("x.requests");
    EXPECT_EQ(reg.duplicateRegistrations(), 0u);

    // A different non-empty description is a collision; it still
    // returns the original stat but is counted every time.
    Counter &c = reg.counter("x.requests", "bytes sent");
    EXPECT_EQ(&a, &c);
    EXPECT_EQ(reg.duplicateRegistrations(), 1u);
    reg.counter("x.requests", "frames dropped");
    EXPECT_EQ(reg.duplicateRegistrations(), 2u);

    // The first description wins in the dump.
    std::ostringstream out;
    JsonWriter json(out, false);
    reg.writeJson(json);
    JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("x.requests").at("desc").asString(),
              "requests served");
}

TEST(StatsRegistry, FindOfAbsentNameIsNull)
{
    StatsRegistry reg;
    EXPECT_FALSE(reg.has("ghost"));
    EXPECT_EQ(reg.findCounter("ghost"), nullptr);
    EXPECT_EQ(reg.findDistribution("ghost"), nullptr);
    EXPECT_EQ(reg.findHistogram("ghost"), nullptr);
    EXPECT_EQ(reg.findTimeSeries("ghost"), nullptr);
}

TEST(StatsRegistry, ResetValuesKeepsRegistrations)
{
    StatsRegistry reg;
    reg.counter("c").add(5.0);
    reg.distribution("d").sample(1.0);
    reg.histogram("h", 0.0, 4.0, 4).sample(1.0);
    reg.timeSeries("t").sample(0.0, 1.0);
    reg.resetValues();
    EXPECT_EQ(reg.size(), 4u);
    EXPECT_DOUBLE_EQ(reg.findCounter("c")->value(), 0.0);
    EXPECT_EQ(reg.findDistribution("d")->count(), 0u);
    EXPECT_EQ(reg.findHistogram("h")->count(), 0u);
    EXPECT_EQ(reg.findTimeSeries("t")->size(), 0u);
}

TEST(StatsRegistry, JsonDumpRoundTrips)
{
    StatsRegistry reg;
    reg.counter("c", "a counter").add(2.0);
    Distribution &d = reg.distribution("d");
    d.sample(1.0);
    d.sample(3.0);
    reg.histogram("h", 0.0, 4.0, 2).sample(3.5);
    reg.timeSeries("t").sample(0.25, 0.5);

    std::ostringstream out;
    JsonWriter json(out, false);
    reg.writeJson(json);
    JsonValue root = parseJson(out.str());

    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.size(), 4u);
    EXPECT_EQ(root.at("c").at("kind").asString(), "counter");
    EXPECT_EQ(root.at("c").at("desc").asString(), "a counter");
    EXPECT_DOUBLE_EQ(root.at("c").at("value").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(root.at("d").at("mean").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(root.at("d").at("count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(root.at("h").at("buckets").at(1).asNumber(),
                     1.0);
    EXPECT_DOUBLE_EQ(root.at("t").at("t").at(0).asNumber(), 0.25);
    EXPECT_DOUBLE_EQ(root.at("t").at("v").at(0).asNumber(), 0.5);
}

TEST(StatsRegistry, GaugeOverwritesInsteadOfAccumulating)
{
    StatsRegistry reg;
    Gauge &g = reg.gauge("mem.bytes", "bytes held");
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(100.0);
    g.set(42.0);
    EXPECT_DOUBLE_EQ(g.value(), 42.0);

    // Re-registration returns the same gauge; resetValues zeroes it.
    EXPECT_DOUBLE_EQ(reg.gauge("mem.bytes").value(), 42.0);
    ASSERT_NE(reg.findGauge("mem.bytes"), nullptr);
    EXPECT_EQ(reg.findGauge("absent"), nullptr);
    reg.resetValues();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);

    // A gauge name cannot be re-registered as another kind.
    EXPECT_THROW(reg.counter("mem.bytes"), FatalError);
}

TEST(StatsRegistry, GaugeJsonDump)
{
    StatsRegistry reg;
    reg.gauge("g", "a gauge").set(7.5);
    std::ostringstream out;
    JsonWriter json(out, false);
    reg.writeJson(json);
    JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("g").at("kind").asString(), "gauge");
    EXPECT_DOUBLE_EQ(root.at("g").at("value").asNumber(), 7.5);
}

} // namespace
} // namespace telemetry
} // namespace gables
