/**
 * @file
 * Unit tests for the CLI argument parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/arg_parser.h"
#include "util/logging.h"

namespace gables {
namespace {

/** Helper: parse a list of argv words (argv[0] is the program). */
bool
parseWords(ArgParser &parser, std::initializer_list<const char *> words,
           std::ostream &err)
{
    std::vector<const char *> argv(words);
    return parser.parse(static_cast<int>(argv.size()), argv.data(), err);
}

TEST(ArgParser, OptionWithSeparateValue)
{
    ArgParser p("t", "test");
    p.addOption("bpeak", "bandwidth");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--bpeak", "30e9"}, err));
    EXPECT_TRUE(p.has("bpeak"));
    EXPECT_DOUBLE_EQ(p.getDouble("bpeak", 0.0), 30e9);
}

TEST(ArgParser, OptionWithEqualsValue)
{
    ArgParser p("t", "test");
    p.addOption("name", "a name");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--name=sd835"}, err));
    EXPECT_EQ(p.getString("name"), "sd835");
}

TEST(ArgParser, FlagPresence)
{
    ArgParser p("t", "test");
    p.addFlag("json", "emit json");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--json"}, err));
    EXPECT_TRUE(p.has("json"));
    EXPECT_FALSE(p.has("absent"));
}

TEST(ArgParser, DefaultsWhenAbsent)
{
    ArgParser p("t", "test");
    p.addOption("f", "fraction", "0.5");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t"}, err));
    EXPECT_DOUBLE_EQ(p.getDouble("f", 0.5), 0.5);
    EXPECT_EQ(p.getInt("f", 7), 7);
    EXPECT_EQ(p.getString("missing", "dflt"), "dflt");
}

TEST(ArgParser, PositionalArguments)
{
    ArgParser p("t", "test");
    p.addOption("x", "an option");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "alpha", "--x", "1", "beta"}, err));
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "alpha");
    EXPECT_EQ(p.positional()[1], "beta");
}

TEST(ArgParser, DoubleDashEndsOptions)
{
    ArgParser p("t", "test");
    p.addFlag("v", "verbose");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--", "--v"}, err));
    EXPECT_FALSE(p.has("v"));
    ASSERT_EQ(p.positional().size(), 1u);
    EXPECT_EQ(p.positional()[0], "--v");
}

TEST(ArgParser, UnknownOptionFails)
{
    ArgParser p("t", "test");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--mystery"}, err));
    EXPECT_NE(err.str().find("unknown option"), std::string::npos);
}

TEST(ArgParser, UnknownOptionSuggestsClosestName)
{
    ArgParser p("t", "test");
    p.addIntOption("jobs", "worker threads");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--jbos", "4"}, err));
    EXPECT_NE(err.str().find("did you mean '--jobs'?"),
              std::string::npos);
}

// Regression: `--jobs=abc` used to silently become jobs=0 (= all
// hardware threads) via strtol with a null end pointer. It must be a
// loud parse failure instead.
TEST(ArgParser, TypedIntOptionRejectsGarbage)
{
    ArgParser p("gables sweep", "test");
    p.addIntOption("jobs", "worker threads");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--jobs=abc"}, err));
    EXPECT_NE(err.str().find("--jobs expects an integer"),
              std::string::npos);
    EXPECT_NE(err.str().find("abc"), std::string::npos);
    EXPECT_FALSE(p.helpRequested());
}

TEST(ArgParser, TypedIntOptionRejectsTrailingGarbage)
{
    ArgParser p("t", "test");
    p.addIntOption("n", "count");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--n", "12x"}, err));
    EXPECT_FALSE(parseWords(p, {"t", "--n", "1.5"}, err));
}

TEST(ArgParser, TypedDoubleOptionRejectsGarbage)
{
    ArgParser p("t", "test");
    p.addDoubleOption("f", "fraction");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--f", "half"}, err));
    EXPECT_NE(err.str().find("--f expects a number"),
              std::string::npos);
    std::ostringstream err2;
    EXPECT_TRUE(parseWords(p, {"t", "--f", "0.5"}, err2));
    EXPECT_DOUBLE_EQ(p.getDouble("f", 0.0), 0.5);
}

// Untyped options still parse strictly at accessor time.
TEST(ArgParser, UntypedGetterThrowsOnTrailingGarbage)
{
    ArgParser p("t", "test");
    p.addOption("x", "stringly typed");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--x", "30e9zzz"}, err));
    EXPECT_THROW(p.getDouble("x", 0.0), FatalError);
    EXPECT_THROW(p.getInt("x", 0), FatalError);
    EXPECT_EQ(p.getString("x"), "30e9zzz");
}

TEST(ArgParser, MissingValueFails)
{
    ArgParser p("t", "test");
    p.addOption("x", "needs value");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--x"}, err));
    EXPECT_NE(err.str().find("requires a value"), std::string::npos);
}

TEST(ArgParser, FlagRejectsValue)
{
    ArgParser p("t", "test");
    p.addFlag("json", "emit json");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--json=yes"}, err));
}

TEST(ArgParser, HelpReturnsFalseAndPrintsUsage)
{
    ArgParser p("mytool", "does things");
    p.addOption("x", "the x value", "1");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"mytool", "--help"}, err));
    EXPECT_TRUE(p.helpRequested());
    EXPECT_NE(err.str().find("usage: mytool"), std::string::npos);
    EXPECT_NE(err.str().find("default: 1"), std::string::npos);
}

TEST(ArgParser, HelpRequestedDistinguishesUsageErrors)
{
    ArgParser p("t", "test");
    std::ostringstream err;
    EXPECT_FALSE(parseWords(p, {"t", "--nope"}, err));
    EXPECT_FALSE(p.helpRequested());
}

TEST(ArgParser, IntParsing)
{
    ArgParser p("t", "test");
    p.addOption("n", "count");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--n", "17"}, err));
    EXPECT_EQ(p.getInt("n", 0), 17);
}

TEST(ArgParser, RepeatedOptionAccumulatesInOrder)
{
    ArgParser p("t", "test");
    p.addOption("ignore", "field to skip (repeatable)");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(
        p, {"t", "--ignore", "profile", "--ignore=meta.seconds",
            "--ignore", "x"},
        err));
    std::vector<std::string> want = {"profile", "meta.seconds", "x"};
    EXPECT_EQ(p.getStrings("ignore"), want);
    // Scalar accessors keep last-occurrence-wins semantics.
    EXPECT_EQ(p.getString("ignore"), "x");
}

TEST(ArgParser, GetStringsEmptyWhenAbsent)
{
    ArgParser p("t", "test");
    p.addOption("ignore", "field to skip (repeatable)");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t"}, err));
    EXPECT_TRUE(p.getStrings("ignore").empty());
}

TEST(ArgParser, RepeatedNumericOptionUsesLastValue)
{
    ArgParser p("t", "test");
    p.addOption("n", "count");
    std::ostringstream err;
    ASSERT_TRUE(parseWords(p, {"t", "--n", "4", "--n", "17"}, err));
    EXPECT_EQ(p.getInt("n", 0), 17);
    EXPECT_DOUBLE_EQ(p.getDouble("n", 0.0), 17.0);
}

} // namespace
} // namespace gables
