/**
 * @file
 * Unit tests for crash-safe whole-file writes (util/atomic_file.h):
 * create/replace semantics, binary fidelity, no stray temporaries,
 * and failure behavior when the destination directory is missing.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/logging.h"

namespace gables {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("gables_atomic_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + std::to_string(counter_++));
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string slurp(const fs::path &p)
    {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream oss;
        oss << in.rdbuf();
        return oss.str();
    }

    fs::path dir_;
    static int counter_;
};

int AtomicFileTest::counter_ = 0;

TEST_F(AtomicFileTest, CreatesNewFile)
{
    fs::path target = dir_ / "report.json";
    writeFileAtomic(target.string(), "{\"a\": 1}\n");
    EXPECT_EQ(slurp(target), "{\"a\": 1}\n");
}

TEST_F(AtomicFileTest, ReplacesExistingContents)
{
    fs::path target = dir_ / "report.json";
    writeFileAtomic(target.string(), "old old old old old");
    writeFileAtomic(target.string(), "new");
    EXPECT_EQ(slurp(target), "new");
}

TEST_F(AtomicFileTest, PreservesBinaryBytes)
{
    fs::path target = dir_ / "blob";
    std::string data = "a\0b\r\nc", full(data.data(), 6);
    writeFileAtomic(target.string(), full);
    EXPECT_EQ(slurp(target), full);
}

TEST_F(AtomicFileTest, LeavesNoTemporariesBehind)
{
    fs::path target = dir_ / "report.json";
    writeFileAtomic(target.string(), "x");
    size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir_)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicFileTest, MissingDirectoryThrowsAndNameIsInError)
{
    fs::path target = dir_ / "nope" / "report.json";
    try {
        writeFileAtomic(target.string(), "x");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("report.json"),
                  std::string::npos);
    }
    EXPECT_FALSE(fs::exists(target));
}

TEST_F(AtomicFileTest, FailedWriteLeavesOldContents)
{
    // Target an existing file, then point the write at a directory
    // path that cannot be opened: the original must survive.
    fs::path target = dir_ / "keep.json";
    writeFileAtomic(target.string(), "original");
    fs::path bad = dir_ / "sub" / "x.json";
    EXPECT_THROW(writeFileAtomic(bad.string(), "y"), FatalError);
    EXPECT_EQ(slurp(target), "original");
}

} // namespace
} // namespace gables
