/**
 * @file
 * Unit tests for the table formatter, CSV writer/parser, and JSON
 * writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/table.h"

namespace gables {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string out = t.render();
    // Header then rule then two rows.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    // Every line has the same width.
    std::istringstream iss(out);
    std::string line;
    size_t width = 0;
    while (std::getline(iss, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TextTable, RowCellCountEnforced)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), FatalError);
    EXPECT_THROW(t.addRow({"1", "2", "3"}), FatalError);
}

TEST(TextTable, RowCount)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, MarkdownRendering)
{
    TextTable t({"x", "y"});
    t.addRow({"1", "2"});
    std::string md = t.renderMarkdown();
    EXPECT_NE(md.find("| x | y |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Csv, PlainRow)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow(std::vector<std::string>{"a", "b", "c"});
    EXPECT_EQ(oss.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialFields)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow(std::vector<std::string>{"a,b", "say \"hi\""});
    EXPECT_EQ(oss.str(), "\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Csv, NumericRow)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow(std::vector<double>{1.5, 2.0});
    EXPECT_EQ(oss.str(), "1.5,2\n");
}

TEST(Csv, ParseRoundTrip)
{
    std::ostringstream oss;
    CsvWriter csv(oss);
    csv.writeRow(std::vector<std::string>{"plain", "with,comma",
                                          "with \"quote\""});
    csv.writeRow(std::vector<std::string>{"1", "2", "3"});
    auto rows = parseCsv(oss.str());
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], "with,comma");
    EXPECT_EQ(rows[0][2], "with \"quote\"");
    EXPECT_EQ(rows[1][2], "3");
}

TEST(Csv, ParseHandlesCrLf)
{
    auto rows = parseCsv("a,b\r\nc,d\r\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], "b");
    EXPECT_EQ(rows[1][0], "c");
}

TEST(Json, SimpleObject)
{
    std::ostringstream oss;
    JsonWriter json(oss, false);
    json.beginObject();
    json.kv("name", "gables");
    json.kv("n", 3);
    json.kv("ok", true);
    json.endObject();
    EXPECT_TRUE(json.done());
    EXPECT_EQ(oss.str(), "{\"name\":\"gables\",\"n\":3,\"ok\":true}");
}

TEST(Json, NestedArraysAndObjects)
{
    std::ostringstream oss;
    JsonWriter json(oss, false);
    json.beginObject();
    json.key("ips");
    json.beginArray();
    json.beginObject();
    json.kv("a", 1.0);
    json.endObject();
    json.beginObject();
    json.kv("a", 2.5);
    json.endObject();
    json.endArray();
    json.endObject();
    EXPECT_EQ(oss.str(), "{\"ips\":[{\"a\":1},{\"a\":2.5}]}");
}

TEST(Json, EscapesStrings)
{
    std::ostringstream oss;
    JsonWriter json(oss, false);
    json.beginObject();
    json.kv("s", std::string("line\n\"q\"\\"));
    json.endObject();
    EXPECT_EQ(oss.str(), "{\"s\":\"line\\n\\\"q\\\"\\\\\"}");
}

TEST(Json, NanBecomesNull)
{
    std::ostringstream oss;
    JsonWriter json(oss, false);
    json.beginArray();
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(1.0);
    json.endArray();
    EXPECT_EQ(oss.str(), "[null,1]");
}

TEST(Json, NumberArrayHelper)
{
    std::ostringstream oss;
    JsonWriter json(oss, false);
    json.beginObject();
    json.numberArray("xs", {1.0, 2.0, 3.0});
    json.endObject();
    EXPECT_EQ(oss.str(), "{\"xs\":[1,2,3]}");
}

TEST(Json, DoubleRoundTripPrecision)
{
    std::ostringstream oss;
    JsonWriter json(oss, false);
    json.beginArray();
    json.value(0.1);
    json.value(1.0 / 3.0);
    json.endArray();
    // Parse the numbers back and compare exactly.
    double a = 0.0, b = 0.0;
    ASSERT_EQ(std::sscanf(oss.str().c_str(), "[%lf,%lf]", &a, &b), 2);
    EXPECT_DOUBLE_EQ(a, 0.1);
    EXPECT_DOUBLE_EQ(b, 1.0 / 3.0);
}

} // namespace
} // namespace gables
