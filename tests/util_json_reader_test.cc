/**
 * @file
 * Tests of the minimal JSON parser: literals, numbers, strings with
 * escapes, containers, error reporting, and round-tripping documents
 * produced by JsonWriter.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace gables {
namespace {

TEST(JsonReader, Literals)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
}

TEST(JsonReader, Numbers)
{
    EXPECT_DOUBLE_EQ(parseJson("0").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(parseJson("-17").asNumber(), -17.0);
    EXPECT_DOUBLE_EQ(parseJson("3.25").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(parseJson("6.4e9").asNumber(), 6.4e9);
    EXPECT_DOUBLE_EQ(parseJson("1E-3").asNumber(), 1e-3);
}

TEST(JsonReader, StringsAndEscapes)
{
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
    EXPECT_EQ(parseJson("\"a\\\"b\\\\c\"").asString(), "a\"b\\c");
    EXPECT_EQ(parseJson("\"tab\\there\"").asString(), "tab\there");
    EXPECT_EQ(parseJson("\"\\u0041\"").asString(), "A");
    // U+00E9 (e-acute) becomes two UTF-8 bytes.
    EXPECT_EQ(parseJson("\"\\u00e9\"").asString(), "\xc3\xa9");
}

TEST(JsonReader, Containers)
{
    JsonValue arr = parseJson(" [1, \"two\", [3], {\"k\": 4}] ");
    ASSERT_TRUE(arr.isArray());
    ASSERT_EQ(arr.size(), 4u);
    EXPECT_DOUBLE_EQ(arr.at(0).asNumber(), 1.0);
    EXPECT_EQ(arr.at(1).asString(), "two");
    EXPECT_DOUBLE_EQ(arr.at(2).at(0).asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(arr.at(3).at("k").asNumber(), 4.0);

    JsonValue obj = parseJson("{\"a\": {\"b\": []}, \"c\": null}");
    ASSERT_TRUE(obj.isObject());
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_TRUE(obj.has("a"));
    EXPECT_FALSE(obj.has("b"));
    EXPECT_TRUE(obj.at("a").at("b").isArray());
    EXPECT_TRUE(obj.at("c").isNull());
    // Document order is preserved.
    EXPECT_EQ(obj.members()[0].first, "a");
    EXPECT_EQ(obj.members()[1].first, "c");
}

TEST(JsonReader, MalformedInputIsFatal)
{
    EXPECT_THROW(parseJson(""), FatalError);
    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("[1,]"), FatalError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), FatalError);
    EXPECT_THROW(parseJson("\"unterminated"), FatalError);
    EXPECT_THROW(parseJson("nul"), FatalError);
    EXPECT_THROW(parseJson("1 2"), FatalError); // trailing garbage
}

TEST(JsonReader, TypeMismatchIsFatal)
{
    JsonValue v = parseJson("[1]");
    EXPECT_THROW(v.asNumber(), FatalError);
    EXPECT_THROW(v.at("k"), FatalError);
    EXPECT_THROW(v.at(5), FatalError);
    EXPECT_THROW(parseJson("{}").at("missing"), FatalError);
}

TEST(JsonReader, RoundTripsJsonWriterOutput)
{
    std::ostringstream out;
    JsonWriter json(out, false);
    json.beginObject();
    json.kv("name", "a \"quoted\" name");
    json.kv("pi", 3.141592653589793);
    json.key("list");
    json.beginArray();
    json.value(1.0);
    json.value(-2.5);
    json.endArray();
    json.endObject();

    JsonValue root = parseJson(out.str());
    EXPECT_EQ(root.at("name").asString(), "a \"quoted\" name");
    EXPECT_DOUBLE_EQ(root.at("pi").asNumber(), 3.141592653589793);
    EXPECT_DOUBLE_EQ(root.at("list").at(1).asNumber(), -2.5);
}

} // namespace
} // namespace gables
