/**
 * @file
 * Tests of the logging layer: severity tags on emitted lines, level
 * filtering, log-level parsing for the --log-level CLI flag, and the
 * fatal() contract.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace gables {
namespace {

/** Capture log output and restore level + sink on destruction. */
class LogCapture
{
  public:
    LogCapture()
        : savedLevel_(logLevel())
    {
        setLogSink(&buf_);
    }

    ~LogCapture()
    {
        setLogSink(nullptr);
        setLogLevel(savedLevel_);
    }

    std::string text() const { return buf_.str(); }

  private:
    std::ostringstream buf_;
    LogLevel savedLevel_;
};

TEST(Logging, LinesCarrySeverityTags)
{
    LogCapture cap;
    setLogLevel(LogLevel::Debug);
    debug("d-msg");
    inform("i-msg");
    warn("w-msg");
    EXPECT_EQ(cap.text(), "debug: d-msg\ninfo: i-msg\nwarn: w-msg\n");
}

TEST(Logging, LevelFiltersLowerSeverities)
{
    LogCapture cap;
    setLogLevel(LogLevel::Warn);
    debug("hidden");
    inform("hidden");
    warn("visible");
    EXPECT_EQ(cap.text(), "warn: visible\n");
}

TEST(Logging, ErrorLevelSilencesWarnButNotFatal)
{
    LogCapture cap;
    setLogLevel(LogLevel::Error);
    warn("hidden");
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_EQ(cap.text(), "fatal: boom\n");
}

TEST(Logging, FatalCarriesMessage)
{
    LogCapture cap;
    try {
        fatal("the reason");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "the reason");
    }
}

TEST(Logging, ParseLogLevelAcceptsNamesCaseInsensitively)
{
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("INFO"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("Warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
}

TEST(Logging, ParseLogLevelRejectsUnknownNames)
{
    LogCapture cap;
    EXPECT_THROW(parseLogLevel("verbose"), FatalError);
    EXPECT_THROW(parseLogLevel(""), FatalError);
}

TEST(Logging, DlogSkipsMessageConstructionWhenDisabled)
{
    LogCapture cap;
    setLogLevel(LogLevel::Info);
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return std::string("pricey");
    };
    GABLES_DLOG(expensive());
    EXPECT_EQ(evaluations, 0) << "argument must not be evaluated "
                                 "below Debug level";
    EXPECT_EQ(cap.text(), "");

    setLogLevel(LogLevel::Debug);
    GABLES_DLOG(expensive());
    EXPECT_EQ(evaluations, 1);
    EXPECT_EQ(cap.text(), "debug: pricey\n");
}

TEST(Logging, DlogComposesWithControlFlow)
{
    // The macro must behave as a single statement (usable un-braced
    // in an if/else).
    LogCapture cap;
    setLogLevel(LogLevel::Debug);
    if (true)
        GABLES_DLOG("then-branch");
    else
        GABLES_DLOG("else-branch");
    EXPECT_EQ(cap.text(), "debug: then-branch\n");
}

TEST(Logging, LevelNamesRoundTrip)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
    for (LogLevel l : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                       LogLevel::Error})
        EXPECT_EQ(parseLogLevel(logLevelName(l)), l);
}

} // namespace
} // namespace gables
