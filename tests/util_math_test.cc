/**
 * @file
 * Unit tests for util/math_util.h.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/math_util.h"

namespace gables {
namespace {

TEST(WeightedHarmonicMean, UniformWeightsMatchClassic)
{
    // Classic harmonic mean of {2, 4} is 2/(1/2 + 1/4) = 8/3.
    double hm = weightedHarmonicMean({0.5, 0.5}, {2.0, 4.0});
    EXPECT_NEAR(hm, 8.0 / 3.0, 1e-12);
}

TEST(WeightedHarmonicMean, PaperIavgExample)
{
    // Appendix Figure 6b: Iavg = 1/[(0.25/8) + (0.75/0.1)] = 0.13278.
    double iavg = weightedHarmonicMean({0.25, 0.75}, {8.0, 0.1});
    EXPECT_NEAR(iavg, 0.13278, 5e-6);
}

TEST(WeightedHarmonicMean, ZeroWeightSkipsValue)
{
    // The skipped value may be anything; result equals the other.
    double hm = weightedHarmonicMean({1.0, 0.0}, {8.0, 1e-30});
    EXPECT_NEAR(hm, 8.0, 1e-12);
}

TEST(WeightedHarmonicMean, AllZeroWeights)
{
    EXPECT_DOUBLE_EQ(weightedHarmonicMean({0.0, 0.0}, {1.0, 2.0}), 0.0);
}

TEST(WeightedHarmonicMean, ZeroValueGivesZero)
{
    EXPECT_DOUBLE_EQ(weightedHarmonicMean({0.5, 0.5}, {0.0, 4.0}), 0.0);
}

TEST(ApproxEqual, RelativeTolerance)
{
    EXPECT_TRUE(approxEqual(1e12, 1e12 * (1.0 + 1e-12)));
    EXPECT_FALSE(approxEqual(1.0, 1.001));
    EXPECT_TRUE(approxEqual(1.0, 1.001, 1e-2));
}

TEST(RelativeError, ReferenceInDenominator)
{
    EXPECT_NEAR(relativeError(11.0, 10.0), 0.1, 1e-12);
    EXPECT_NEAR(relativeError(9.0, 10.0), 0.1, 1e-12);
}

TEST(Logspace, EndpointsExactAndMonotone)
{
    auto v = logspace(0.01, 100.0, 9);
    ASSERT_EQ(v.size(), 9u);
    EXPECT_DOUBLE_EQ(v.front(), 0.01);
    EXPECT_DOUBLE_EQ(v.back(), 100.0);
    for (size_t i = 1; i < v.size(); ++i)
        EXPECT_GT(v[i], v[i - 1]);
}

TEST(Logspace, GeometricSpacing)
{
    auto v = logspace(1.0, 16.0, 5);
    EXPECT_NEAR(v[1], 2.0, 1e-9);
    EXPECT_NEAR(v[2], 4.0, 1e-9);
    EXPECT_NEAR(v[3], 8.0, 1e-9);
}

TEST(Linspace, EndpointsAndStep)
{
    auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
    EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(LogTicks, CoversRange)
{
    auto t = logTicks(0.05, 200.0);
    // 10^-2 .. 10^3 bracket the range.
    EXPECT_GE(t.size(), 4u);
    EXPECT_LE(t.front(), 0.05);
    EXPECT_GE(t.back(), 200.0);
}

TEST(Bisect, FindsRoot)
{
    double root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, ExactEndpoints)
{
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0),
                     1.0);
}

TEST(GoldenSectionMax, FindsMaximum)
{
    // Max of -(x-3)^2 is at x = 3.
    double argmax = goldenSectionMax(
        [](double x) { return -(x - 3.0) * (x - 3.0); }, 0.0, 10.0);
    EXPECT_NEAR(argmax, 3.0, 1e-6);
}

TEST(GoldenSectionMax, BoundaryMaximum)
{
    // Monotone increasing: max at the right edge.
    double argmax =
        goldenSectionMax([](double x) { return x; }, 0.0, 5.0);
    EXPECT_NEAR(argmax, 5.0, 1e-6);
}

TEST(Clamp, Basics)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

} // namespace
} // namespace gables
