/**
 * @file
 * Unit tests for the strict parsing and diagnostics layer
 * (util/parse.h): full-token numeric parsers, ranged variants,
 * SourceLoc/ConfigError formatting, and did-you-mean suggestions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/parse.h"

namespace gables {
namespace {

TEST(ParseDoubleStrict, AcceptsFullTokens)
{
    EXPECT_DOUBLE_EQ(parseDoubleStrict("0.75"), 0.75);
    EXPECT_DOUBLE_EQ(parseDoubleStrict("3e9"), 3e9);
    EXPECT_DOUBLE_EQ(parseDoubleStrict("-1.5"), -1.5);
    EXPECT_DOUBLE_EQ(parseDoubleStrict("  42  "), 42.0);
    EXPECT_DOUBLE_EQ(parseDoubleStrict("+2.5"), 2.5);
    // Underflow is not an error: a tiny magnitude rounds to zero,
    // matching the old strtod behavior.
    EXPECT_DOUBLE_EQ(parseDoubleStrict("1e-999"), 0.0);
}

TEST(ParseDoubleStrict, RejectsGarbage)
{
    EXPECT_THROW(parseDoubleStrict(""), FatalError);
    EXPECT_THROW(parseDoubleStrict("   "), FatalError);
    EXPECT_THROW(parseDoubleStrict("abc"), FatalError);
    EXPECT_THROW(parseDoubleStrict("1.5x"), FatalError);
    EXPECT_THROW(parseDoubleStrict("1.5 2.5"), FatalError);
    EXPECT_THROW(parseDoubleStrict("1e999"), FatalError);
    // Locale-style decimal commas are trailing garbage, never a
    // decimal point.
    EXPECT_THROW(parseDoubleStrict("1,5"), FatalError);
}

TEST(ParseDoubleStrict, RejectsHexAndNonFinite)
{
    // Strict config input takes plain decimal notation only.
    EXPECT_THROW(parseDoubleStrict("0x1p3"), FatalError);
    EXPECT_THROW(parseDoubleStrict("-0X2"), FatalError);
    EXPECT_THROW(parseDoubleStrict("inf"), FatalError);
    EXPECT_THROW(parseDoubleStrict("-inf"), FatalError);
    EXPECT_THROW(parseDoubleStrict("infinity"), FatalError);
    EXPECT_THROW(parseDoubleStrict("nan"), FatalError);
    EXPECT_THROW(parseDoubleStrict("NaN"), FatalError);
}

TEST(ParseDoubleStrict, ErrorNamesTheWhat)
{
    try {
        parseDoubleStrict("abc", "fraction");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("fraction"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("abc"),
                  std::string::npos);
    }
}

TEST(ParseIntStrict, AcceptsFullTokens)
{
    EXPECT_EQ(parseIntStrict("17"), 17);
    EXPECT_EQ(parseIntStrict("-3"), -3);
    EXPECT_EQ(parseIntStrict(" 0 "), 0);
}

TEST(ParseIntStrict, RejectsGarbageAndFractions)
{
    EXPECT_THROW(parseIntStrict(""), FatalError);
    EXPECT_THROW(parseIntStrict("abc"), FatalError);
    EXPECT_THROW(parseIntStrict("12abc"), FatalError);
    EXPECT_THROW(parseIntStrict("1.5"), FatalError);
    // 2^200 overflows long.
    EXPECT_THROW(parseIntStrict("1606938044258990275541962092341162"
                                "602522202993782792835301376"),
                 FatalError);
}

TEST(ParseIntInRange, EnforcesBounds)
{
    EXPECT_EQ(parseIntInRange("5", 0, 10), 5);
    EXPECT_EQ(parseIntInRange("0", 0, 10), 0);
    EXPECT_EQ(parseIntInRange("10", 0, 10), 10);
    EXPECT_THROW(parseIntInRange("11", 0, 10), FatalError);
    EXPECT_THROW(parseIntInRange("-1", 0, 10), FatalError);
}

TEST(ParseDoubleInRange, EnforcesBounds)
{
    EXPECT_DOUBLE_EQ(parseDoubleInRange("0.5", 0.0, 1.0), 0.5);
    EXPECT_THROW(parseDoubleInRange("1.5", 0.0, 1.0), FatalError);
    // NaN never satisfies a range check.
    EXPECT_THROW(parseDoubleInRange("nan", 0.0, 1.0), FatalError);
}

TEST(ParseSignedVariants, EnforceSign)
{
    EXPECT_DOUBLE_EQ(parsePositiveDouble("2.5"), 2.5);
    EXPECT_THROW(parsePositiveDouble("0"), FatalError);
    EXPECT_THROW(parsePositiveDouble("-1"), FatalError);
    EXPECT_DOUBLE_EQ(parseNonNegativeDouble("0"), 0.0);
    EXPECT_THROW(parseNonNegativeDouble("-0.1"), FatalError);
}

TEST(ParseDoublePrefix, SplitsNumberAndRest)
{
    double value = 0.0;
    std::string rest;
    ASSERT_TRUE(parseDoublePrefix("24.4GB/s", &value, &rest));
    EXPECT_DOUBLE_EQ(value, 24.4);
    EXPECT_EQ(rest, "GB/s");
    ASSERT_TRUE(parseDoublePrefix("42", &value, &rest));
    EXPECT_DOUBLE_EQ(value, 42.0);
    EXPECT_TRUE(rest.empty());
    ASSERT_TRUE(parseDoublePrefix(" 24.4 GB/s", &value, &rest));
    EXPECT_DOUBLE_EQ(value, 24.4);
    EXPECT_EQ(rest, " GB/s");
    EXPECT_FALSE(parseDoublePrefix("fast", &value, &rest));
    EXPECT_FALSE(parseDoublePrefix("", &value, &rest));
    // Hex and non-finite leading tokens are not numbers here either.
    EXPECT_FALSE(parseDoublePrefix("0x1p3", &value, &rest));
    EXPECT_FALSE(parseDoublePrefix("infGB/s", &value, &rest));
    EXPECT_FALSE(parseDoublePrefix("nan", &value, &rest));
}

TEST(SourceLoc, Formats)
{
    EXPECT_EQ((SourceLoc{"a.ini", 7}).str(), "a.ini:7");
    EXPECT_EQ((SourceLoc{"a.ini", 0}).str(), "a.ini");
    EXPECT_EQ((SourceLoc{"", 7}).str(), "line 7");
    EXPECT_EQ((SourceLoc{"", 0}).str(), "");
}

TEST(ConfigError, CarriesLocationAndMessage)
{
    ConfigError err(SourceLoc{"soc.ini", 12}, "bad ppeak");
    EXPECT_STREQ(err.what(), "soc.ini:12: bad ppeak");
    EXPECT_EQ(err.where().file, "soc.ini");
    EXPECT_EQ(err.where().line, 12);
    EXPECT_EQ(err.message(), "bad ppeak");
}

TEST(ConfigError, IsCatchableAsFatalError)
{
    try {
        configError(SourceLoc{"x.ini", 3}, "boom");
        FAIL() << "expected throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("x.ini:3"),
                  std::string::npos);
    }
}

TEST(EditDistance, ClassicCases)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("bpeek", "bpeak"), 1u);
    EXPECT_EQ(editDistance("jbos", "jobs"), 2u);
}

TEST(ClosestMatch, SuggestsNearTypos)
{
    std::vector<std::string> keys = {"name", "ppeak", "bpeak"};
    EXPECT_EQ(closestMatch("bpeek", keys).value_or(""), "bpeak");
    EXPECT_EQ(closestMatch("peak", keys).value_or(""), "ppeak");
    // Case-insensitive.
    EXPECT_EQ(closestMatch("Ppeak", keys).value_or(""), "ppeak");
    // Nothing close: no suggestion.
    EXPECT_FALSE(closestMatch("zzzzzz", keys).has_value());
    // A 1-char word never matches a totally different key.
    EXPECT_FALSE(closestMatch("q", {"jobs"}).has_value());
}

TEST(DidYouMean, FormatsSuffix)
{
    EXPECT_EQ(didYouMean("bpeek", {"bpeak", "ppeak"}),
              " (did you mean 'bpeak'?)");
    EXPECT_EQ(didYouMean("zzzzzz", {"bpeak", "ppeak"}), "");
}

} // namespace
} // namespace gables
