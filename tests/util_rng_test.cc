/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace gables {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff = any_diff || (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, LogUniformWithinRange)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.logUniform(0.01, 100.0);
        EXPECT_GE(v, 0.01);
        EXPECT_LE(v, 100.0);
    }
}

TEST(Rng, LogUniformMedianNearGeometricMean)
{
    Rng rng(17);
    int below = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.logUniform(0.01, 100.0) < 1.0)
            ++below;
    }
    // Geometric mean of [0.01, 100] is 1; about half should fall below.
    EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(19);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(23);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, SimplexSumsToOne)
{
    Rng rng(29);
    for (size_t n : {1u, 2u, 5u, 16u}) {
        auto v = rng.simplex(n);
        ASSERT_EQ(v.size(), n);
        double sum = 0.0;
        for (double x : v) {
            EXPECT_GE(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

} // namespace
} // namespace gables
