/**
 * @file
 * Unit tests for util/strings.h.
 */

#include <gtest/gtest.h>

#include "util/strings.h"

namespace gables {
namespace {

TEST(Trim, StripsBothEnds)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("\t\nhi\r "), "hi");
}

TEST(Trim, EmptyAndAllWhitespace)
{
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   \t"), "");
}

TEST(Trim, NoWhitespaceUnchanged)
{
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Trim, InternalWhitespaceKept)
{
    EXPECT_EQ(trim(" a b "), "a b");
}

TEST(ToLower, MixedCase)
{
    EXPECT_EQ(toLower("GaBlEs"), "gables");
    EXPECT_EQ(toLower("GB/s"), "gb/s");
}

TEST(Split, BasicFields)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyFieldsKept)
{
    auto parts = split("a,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(Split, TrailingDelimiterYieldsEmptyField)
{
    auto parts = split("a,b,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyStringYieldsOneEmptyField)
{
    auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsSplit)
{
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Join, SingleAndEmpty)
{
    EXPECT_EQ(join({"only"}, ", "), "only");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StartsWith, Basic)
{
    EXPECT_TRUE(startsWith("gables-model", "gables"));
    EXPECT_FALSE(startsWith("gables", "gables-model"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(EndsWith, Basic)
{
    EXPECT_TRUE(endsWith("plot.svg", ".svg"));
    EXPECT_FALSE(endsWith("svg", "plot.svg"));
    EXPECT_TRUE(endsWith("abc", ""));
}

TEST(FormatDouble, TrimsTrailingZeros)
{
    EXPECT_EQ(formatDouble(1.5), "1.5");
    EXPECT_EQ(formatDouble(2.0), "2");
    EXPECT_EQ(formatDouble(0.25, 4), "0.25");
}

TEST(FormatDouble, RespectsPrecision)
{
    EXPECT_EQ(formatDouble(1.0 / 3.0, 3), "0.333");
    EXPECT_EQ(formatDouble(0.13278, 5), "0.13278");
}

TEST(FormatDouble, SpecialValues)
{
    EXPECT_EQ(formatDouble(std::numeric_limits<double>::quiet_NaN()),
              "nan");
    EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()),
              "inf");
    EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity()),
              "-inf");
}

TEST(FormatDouble, NegativeValues)
{
    EXPECT_EQ(formatDouble(-1.25), "-1.25");
    EXPECT_EQ(formatDouble(-2.0), "-2");
}

TEST(Pad, LeftAndRight)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
}

TEST(Pad, NoTruncationWhenWide)
{
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
    EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

} // namespace
} // namespace gables
