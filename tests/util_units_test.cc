/**
 * @file
 * Unit tests for util/units.h formatting and parsing.
 */

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/units.h"

namespace gables {
namespace {

TEST(FormatOpsRate, PicksPrefix)
{
    EXPECT_EQ(formatOpsRate(40e9), "40 Gops/s");
    EXPECT_EQ(formatOpsRate(7.5e9), "7.5 Gops/s");
    EXPECT_EQ(formatOpsRate(3.6e6), "3.6 Mops/s");
    EXPECT_EQ(formatOpsRate(250.0), "250 ops/s");
}

TEST(FormatOpsRate, SubUnit)
{
    EXPECT_EQ(formatOpsRate(0.5), "500 mops/s");
}

TEST(FormatByteRate, PicksPrefix)
{
    EXPECT_EQ(formatByteRate(24.4e9), "24.4 GB/s");
    EXPECT_EQ(formatByteRate(15.1e9), "15.1 GB/s");
    EXPECT_EQ(formatByteRate(1e3), "1 kB/s");
}

TEST(FormatBytes, BinaryPrefixes)
{
    EXPECT_EQ(formatBytes(12.0 * kMiB), "12 MiB");
    EXPECT_EQ(formatBytes(2.0 * kGiB), "2 GiB");
    EXPECT_EQ(formatBytes(512.0), "512 B");
}

// Regression: sub-unit values used to fall into the decimal sub-unit
// table and print "500 mB" (millibytes). Binary formatting clamps at
// the base unit instead.
TEST(FormatBytes, SubUnitClampsAtBase)
{
    EXPECT_EQ(formatBytes(0.5), "0.5 B");
    EXPECT_EQ(formatBytes(0.001), "0.001 B");
    EXPECT_EQ(formatBytes(-0.5), "-0.5 B");
}

TEST(FormatSeconds, PicksPrefix)
{
    EXPECT_EQ(formatSeconds(1.5), "1.5 s");
    EXPECT_EQ(formatSeconds(2e-3), "2 ms");
    EXPECT_EQ(formatSeconds(3e-9), "3 ns");
}

TEST(FormatZero, Zeros)
{
    EXPECT_EQ(formatOpsRate(0.0), "0 ops/s");
    EXPECT_EQ(formatBytes(0.0), "0 B");
}

TEST(ParseRate, PlainNumber)
{
    EXPECT_DOUBLE_EQ(parseRate("3e9"), 3e9);
    EXPECT_DOUBLE_EQ(parseRate("42"), 42.0);
}

TEST(ParseRate, DecimalPrefixes)
{
    EXPECT_DOUBLE_EQ(parseRate("40 Gops/s"), 40e9);
    EXPECT_DOUBLE_EQ(parseRate("24.4GB/s"), 24.4e9);
    EXPECT_DOUBLE_EQ(parseRate("920 MHz"), 920e6);
    EXPECT_DOUBLE_EQ(parseRate("1.5 kB/s"), 1500.0);
    EXPECT_DOUBLE_EQ(parseRate("2 Tops/s"), 2e12);
}

TEST(ParseRate, RejectsGarbage)
{
    EXPECT_THROW(parseRate("fast"), FatalError);
    EXPECT_THROW(parseRate(""), FatalError);
    EXPECT_THROW(parseRate("10 furlongs/s"), FatalError);
}

TEST(ParseSize, BinaryPrefixes)
{
    EXPECT_DOUBLE_EQ(parseSize("64KiB"), 64.0 * 1024);
    EXPECT_DOUBLE_EQ(parseSize("12 MiB"), 12.0 * kMiB);
    EXPECT_DOUBLE_EQ(parseSize("2GiB"), 2.0 * kGiB);
}

// Regression: "k" was accepted for "Ki" but "m"/"g" were rejected for
// "Mi"/"Gi". The prefix letter is now case-insensitive for all three.
TEST(ParseSize, BinaryPrefixLetterCaseInsensitive)
{
    EXPECT_DOUBLE_EQ(parseSize("64kiB"), 64.0 * kKiB);
    EXPECT_DOUBLE_EQ(parseSize("12 miB"), 12.0 * kMiB);
    EXPECT_DOUBLE_EQ(parseSize("2 giB"), 2.0 * kGiB);
}

TEST(ParseSize, DecimalPrefixes)
{
    EXPECT_DOUBLE_EQ(parseSize("32 kB"), 32e3);
    EXPECT_DOUBLE_EQ(parseSize("1 MB"), 1e6);
}

TEST(ParseSize, PlainBytes)
{
    EXPECT_DOUBLE_EQ(parseSize("4096"), 4096.0);
    EXPECT_DOUBLE_EQ(parseSize("4096 bytes"), 4096.0);
}

TEST(ParseSize, RejectsBadUnit)
{
    EXPECT_THROW(parseSize("4 parsecs"), FatalError);
}

TEST(FormatParse, RoundTripRates)
{
    for (double v : {1.0, 1e3, 2.5e6, 7.5e9, 3e12}) {
        double parsed = parseRate(formatOpsRate(v, 12));
        EXPECT_NEAR(parsed, v, v * 1e-9);
    }
}

// Property: format -> parse is the identity (to formatting precision)
// for rates and sizes across every prefix band, including the values
// that straddle prefix boundaries.
TEST(FormatParse, RoundTripRatesAcrossPrefixes)
{
    for (double v : {0.25, 1.0, 999.0, 1e3, 999e3, 1e6, 42.42e6, 1e9,
                     7.77e9, 1e12, 3.25e12}) {
        SCOPED_TRACE(v);
        EXPECT_NEAR(parseRate(formatOpsRate(v, 12)), v, v * 1e-9);
        EXPECT_NEAR(parseRate(formatByteRate(v, 12)), v, v * 1e-9);
    }
}

TEST(FormatParse, RoundTripSizesAcrossPrefixes)
{
    for (double v : {0.5, 1.0, 1023.0, 1024.0, 4096.0, 1.5 * kMiB,
                     kMiB, 3.0 * kGiB, 7.25 * kGiB}) {
        SCOPED_TRACE(v);
        EXPECT_NEAR(parseSize(formatBytes(v, 12)), v, v * 1e-9);
    }
}

TEST(ParseRate, RejectsTrailingGarbageAfterUnit)
{
    EXPECT_THROW(parseRate("40 Gops/s extra"), FatalError);
    EXPECT_THROW(parseRate("40 Qops/s"), FatalError);
}

} // namespace
} // namespace gables
